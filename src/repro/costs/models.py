"""Energy models: the single place every charge in the stack is priced.

Two pricing policies share one charging API:

* :class:`StaticEnergyModel` reproduces the historical inline per-op
  constants **bit-for-bit** — same operands, same floating-point
  evaluation order — so a flag-off run's telemetry is indistinguishable
  from the pre-refactor code (the reference-path pattern the IR-drop
  solver and the ECC codec already follow).
* :class:`ValueAwareEnergyModel` prices the same events by the data that
  actually flowed (CiMLoop): DAC/driver energy grows with the square of
  the driven wordline voltage (CV^2 charging), crossbar bitline energy
  with the resolved column swings, ADC energy with the Hamming weight of
  the resolved SAR codes (capacitors left connected), programming energy
  with the target conductance state, and wire energy shrinks with
  operand sparsity.  ``statistical=True`` replaces per-element sums with
  first-moment estimates — one ``mean`` per event instead of per-element
  work — the cheap mode sweeps run under.

Both models charge through :meth:`EnergyModel.charge`, which routes
every :class:`~repro.core.metrics.OperationCost` into the caller's
:class:`~repro.core.metrics.CostAccumulator` (and thus into the current
telemetry scope), so RunReports conserve identically in either mode.
Latency and data-movement are data-independent in both models: value
awareness re-prices *energy* only, keeping timing comparisons stable.

Selection is context-local: :func:`use_model` scopes a model to a
``with`` block, :func:`set_process_default` pins the process default
(what the sweep engine's worker initializer calls), and the
``REPRO_ENERGY_MODEL`` environment variable seeds the initial default.
All value-aware pricing is a pure function of the charged data, so
reports stay bit-identical between serial and multi-worker sweeps.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Iterator, Optional, Union

import numpy as np

from repro.core.metrics import CostAccumulator, OperationCost

__all__ = [
    "CELL_AREA",
    "WRITE_ENERGY_PER_CELL",
    "WRITE_PULSE_TIME",
    "ENV_ENERGY_MODEL",
    "EnergyModelSpec",
    "EnergyModel",
    "StaticEnergyModel",
    "ValueAwareEnergyModel",
    "model_from_spec",
    "active_model",
    "active_spec",
    "set_process_default",
    "use_model",
]

#: mm^2 per memristive cell (ISAAC crossbar: 2.5e-5 mm^2 for 128x128).
CELL_AREA = 2.5e-5 / (128 * 128)

#: Write-pulse cost per cell (SET-pulse CV^2-style estimate).
WRITE_ENERGY_PER_CELL = 10e-12   # J
WRITE_PULSE_TIME = 100e-9        # s per programming pulse

#: Environment variable seeding the process-default model spec.
ENV_ENERGY_MODEL = "REPRO_ENERGY_MODEL"

_KINDS = ("static", "value_aware")


@dataclass(frozen=True)
class EnergyModelSpec:
    """Declarative, JSON-able description of an energy model.

    The spec — not the model instance — is what travels: into serve-layer
    config fingerprints (so static and value-aware results can never
    share a cache hit) and into sweep worker processes (so parallel jobs
    price exactly like serial ones).

    Value-aware parameters: each ``*_static_fraction`` is the
    data-independent floor of that component's per-event energy (clock
    trees, comparators, bias currents); the remaining fraction scales
    with the data.  ``bitline_energy_per_swing`` is the extra crossbar
    bitline charging energy per column conversion at full-scale swing,
    and ``wire_activity_floor`` the minimum switching-activity factor a
    fully sparse payload still pays on a wire.
    """

    kind: str = "static"
    statistical: bool = False
    dac_static_fraction: float = 0.3
    driver_static_fraction: float = 0.3
    adc_static_fraction: float = 0.4
    programming_static_fraction: float = 0.5
    bitline_energy_per_swing: float = 5e-15   # J per column at full swing
    wire_activity_floor: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        for name in (
            "dac_static_fraction",
            "driver_static_fraction",
            "adc_static_fraction",
            "programming_static_fraction",
            "wire_activity_floor",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if self.bitline_energy_per_swing < 0:
            raise ValueError(
                f"bitline_energy_per_swing must be >= 0, got "
                f"{self.bitline_energy_per_swing}"
            )

    @property
    def name(self) -> str:
        """Canonical short name (what CLI flags and configs accept)."""
        if self.kind == "static":
            return "static"
        return "value_aware_statistical" if self.statistical else "value_aware"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form, suitable for config fingerprints."""
        return asdict(self)

    @staticmethod
    def parse(spec: "SpecLike") -> "EnergyModelSpec":
        """Coerce a name, dict or spec into an :class:`EnergyModelSpec`.

        Accepted names: ``"static"``, ``"value_aware"``,
        ``"value_aware_statistical"``.  Dicts may carry either a
        ``kind``/``statistical`` pair or a ``name`` plus parameter
        overrides.
        """
        if isinstance(spec, EnergyModelSpec):
            return spec
        if isinstance(spec, str):
            if spec == "static":
                return EnergyModelSpec()
            if spec == "value_aware":
                return EnergyModelSpec(kind="value_aware")
            if spec == "value_aware_statistical":
                return EnergyModelSpec(kind="value_aware", statistical=True)
            raise ValueError(
                f"unknown energy model {spec!r}; expected 'static', "
                f"'value_aware' or 'value_aware_statistical'"
            )
        if isinstance(spec, dict):
            fields = dict(spec)
            base = EnergyModelSpec.parse(fields.pop("name", "static"))
            if "kind" in fields or "statistical" in fields:
                base = EnergyModelSpec(
                    kind=fields.pop("kind", base.kind),
                    statistical=bool(fields.pop("statistical", base.statistical)),
                )
            return replace(base, **fields)
        raise TypeError(
            f"spec must be a name, dict or EnergyModelSpec, got "
            f"{type(spec).__name__}"
        )


SpecLike = Union[str, Dict[str, Any], EnergyModelSpec]


class EnergyModel:
    """Charging API every cost-bearing layer calls.

    Each ``charge_*`` method prices one physical event and routes the
    resulting :class:`OperationCost` through the caller's accumulator via
    :meth:`charge` — the single funnel into telemetry.  The base class
    implements the **static** pricing (the historical constants);
    subclasses override the energy terms only.
    """

    spec = EnergyModelSpec()

    #: Whether the model prices by data values.  Call sites that would
    #: have to *build* a value array just for pricing (e.g. endurance
    #: snapshots) can skip it when this is ``False``.
    needs_values = False

    # ------------------------------------------------------------ the funnel
    def charge(
        self, costs: CostAccumulator, category: str, cost: OperationCost
    ) -> OperationCost:
        """Route one priced event into ``costs`` (and telemetry)."""
        costs.add(category, cost)
        return cost

    # -------------------------------------------------------------- pricing
    def charge_programming(
        self,
        costs: CostAccumulator,
        *,
        n_cells: int,
        iterations: float = 1,
        targets: Optional[np.ndarray] = None,
        g_min: Optional[float] = None,
        g_max: Optional[float] = None,
    ) -> OperationCost:
        """Write pulses onto ``n_cells`` cells, ``iterations`` rounds.

        ``targets`` (the programmed conductances) and the device's
        ``g_min``/``g_max`` enable state-dependent pricing.
        """
        return self.charge(
            costs,
            "programming",
            OperationCost(
                energy=self._programming_energy(
                    n_cells, iterations, targets, g_min, g_max
                ),
                latency=WRITE_PULSE_TIME * iterations,
            ),
        )

    def charge_dac(
        self,
        costs: CostAccumulator,
        dac,
        *,
        rows: int,
        batch: int,
        voltages: Optional[np.ndarray] = None,
        v_ref: Optional[float] = None,
    ) -> OperationCost:
        """One conversion per wordline per batch vector.

        ``voltages`` is the driven wordline matrix and ``v_ref`` its full
        scale; value-aware pricing keys on the update magnitudes.
        """
        return self.charge(
            costs,
            "dac",
            OperationCost(
                energy=self._dac_energy(dac, rows, batch, voltages, v_ref),
                latency=dac.latency * batch,
            ),
        )

    def charge_array(
        self,
        costs: CostAccumulator,
        *,
        settle_power: float,
        settle_time: float,
        batch: int = 1,
        column_volts: Optional[np.ndarray] = None,
        v_fs: Optional[float] = None,
    ) -> OperationCost:
        """Analog evaluation: the array dissipates ``settle_power`` (the
        actual ``V^2 G`` read power, already data-dependent) for one
        settle window; ``column_volts`` (resolved column swings, full
        scale ``v_fs``) enables the value-aware bitline-charging term."""
        return self.charge(
            costs,
            "array",
            OperationCost(
                energy=self._array_energy(
                    settle_power, settle_time, column_volts, v_fs
                ),
                latency=settle_time * batch,
            ),
        )

    def charge_adc(
        self,
        costs: CostAccumulator,
        adc,
        *,
        n_cols: int,
        batch: int,
        codes: Optional[np.ndarray] = None,
    ) -> OperationCost:
        """One conversion per physical column per batch vector; ``codes``
        (the resolved output codes) enable SAR code-dependent pricing."""
        return self.charge(
            costs,
            "adc",
            OperationCost(
                energy=self._adc_energy(adc, n_cols, batch, codes),
                latency=adc.latency * batch,
            ),
        )

    def charge_driver(
        self,
        costs: CostAccumulator,
        config,
        *,
        activations: int,
        batch: int = 1,
        voltages: Optional[np.ndarray] = None,
        v_ref: Optional[float] = None,
    ) -> OperationCost:
        """``activations`` driven-wordline events across ``batch``
        vectors; ``voltages`` enables magnitude-dependent pricing."""
        return self.charge(
            costs,
            "driver",
            OperationCost(
                energy=self._driver_energy(
                    config, activations, voltages, v_ref
                ),
                latency=config.latency * batch,
            ),
        )

    def charge_sense(
        self, costs: CostAccumulator, config, *, n_senses: int, repeats: int = 1
    ) -> OperationCost:
        """``n_senses`` sense-amplifier compares over ``repeats``
        sequential latency windows (one by default — the historical
        single-access behaviour; the ECC advisor prices a whole read
        workload as ``repeats`` codeword accesses in one charge)."""
        return self.charge(
            costs,
            "sense_amp",
            OperationCost(
                energy=config.energy_per_sense * n_senses,
                latency=config.latency * repeats,
            ),
        )

    def charge_decoder(
        self, costs: CostAccumulator, config, *, n_rows: int
    ) -> OperationCost:
        """Row-decoder activation of ``n_rows`` wordlines."""
        return self.charge(
            costs,
            "decoder",
            OperationCost(
                energy=config.energy_per_activation * n_rows,
                latency=config.latency,
            ),
        )

    def charge_movement(
        self,
        costs: CostAccumulator,
        params,
        *,
        n_bytes: float,
        values: Optional[np.ndarray] = None,
    ) -> OperationCost:
        """Memory-bus transfer of ``n_bytes`` (von Neumann machines);
        ``values`` enables sparsity-dependent wire pricing."""
        return self.charge(
            costs,
            "data_movement",
            OperationCost(
                energy=self._wire_energy(
                    n_bytes * 8 * params.bus_energy_per_bit, values
                ),
                latency=n_bytes / params.bus_bandwidth,
                data_moved=n_bytes,
            ),
        )

    def charge_compute(
        self, costs: CostAccumulator, params, *, macs: int
    ) -> OperationCost:
        """ALU multiply-accumulate work (data-independent in both
        models: digital MAC energy varies far less than wires/ADCs)."""
        return self.charge(
            costs,
            "compute",
            OperationCost(
                energy=macs * params.mac_energy,
                latency=(macs / params.alu_parallelism) * params.mac_latency,
            ),
        )

    def charge_transfer(
        self,
        costs: CostAccumulator,
        params,
        *,
        payload: float,
        latency: float,
        values: Optional[np.ndarray] = None,
    ) -> OperationCost:
        """Inter-tile link transfer of ``payload`` bytes (latency is
        computed by the link model and passed through unchanged)."""
        return self.charge(
            costs,
            "interconnect",
            OperationCost(
                energy=self._wire_energy(
                    payload * params.energy_per_byte, values
                ),
                latency=latency,
                data_moved=payload,
            ),
        )

    # ----------------------------------------------- static energy terms
    # Each expression reproduces the historical inline charge verbatim —
    # same operands, same evaluation order — so flag-off telemetry is
    # bit-identical to the pre-refactor code.
    def _programming_energy(self, n_cells, iterations, targets, g_min, g_max):
        return WRITE_ENERGY_PER_CELL * n_cells * iterations

    def _dac_energy(self, dac, rows, batch, voltages, v_ref):
        return dac.energy_per_conversion * rows * batch

    def _array_energy(self, settle_power, settle_time, column_volts, v_fs):
        return settle_power * settle_time

    def _adc_energy(self, adc, n_cols, batch, codes):
        return adc.energy_per_conversion * n_cols * batch

    def _driver_energy(self, config, activations, voltages, v_ref):
        return activations * config.energy_per_activation

    def _wire_energy(self, base_energy, values):
        return base_energy


class StaticEnergyModel(EnergyModel):
    """The reference path: historical data-independent constants."""

    def __init__(self, spec: Optional[EnergyModelSpec] = None) -> None:
        self.spec = spec or EnergyModelSpec()


def _popcount(codes: np.ndarray) -> np.ndarray:
    """Vectorized per-element population count of non-negative ints."""
    bitwise_count = getattr(np, "bitwise_count", None)
    if bitwise_count is not None:
        return bitwise_count(codes.astype(np.uint64))
    counts = np.zeros(codes.shape, dtype=np.int64)
    work = codes.astype(np.int64).copy()
    while work.any():
        counts += work & 1
        work >>= 1
    return counts


class ValueAwareEnergyModel(EnergyModel):
    """CiMLoop-style pricing: energy follows the data.

    ``statistical=False`` (exact mode) sums per-element contributions —
    every wordline update, every resolved code.  ``statistical=True``
    replaces each per-element sum with a first-moment estimate (one
    ``mean`` per event): cheaper, approximate, and documented as such.
    Both modes are pure functions of the charged values, so sweeps stay
    bit-identical at any worker count.
    """

    needs_values = True

    def __init__(self, spec: Optional[EnergyModelSpec] = None) -> None:
        spec = spec or EnergyModelSpec(kind="value_aware")
        if spec.kind != "value_aware":
            raise ValueError(
                f"ValueAwareEnergyModel needs a value_aware spec, got "
                f"{spec.kind!r}"
            )
        self.spec = spec

    # --------------------------------------------------------------- helpers
    @property
    def _stat(self) -> bool:
        return self.spec.statistical

    # ---------------------------------------------------------------- energy
    def _programming_energy(self, n_cells, iterations, targets, g_min, g_max):
        base = WRITE_ENERGY_PER_CELL * n_cells * iterations
        if targets is None or g_min is None or g_max is None or g_max <= g_min:
            return base
        gamma = self.spec.programming_static_fraction
        targets = np.asarray(targets, dtype=float)
        span = g_max - g_min
        if self._stat:
            state = (float(np.mean(targets)) - g_min) / span
            dyn = n_cells * min(max(state, 0.0), 1.0)
        else:
            state = np.clip((targets - g_min) / span, 0.0, 1.0)
            dyn = float(np.sum(state))
        return WRITE_ENERGY_PER_CELL * iterations * (
            gamma * n_cells + (1.0 - gamma) * dyn
        )

    def _dac_energy(self, dac, rows, batch, voltages, v_ref):
        base = dac.energy_per_conversion * rows * batch
        if voltages is None or not v_ref:
            return base
        alpha = self.spec.dac_static_fraction
        voltages = np.asarray(voltages, dtype=float)
        n = voltages.size
        if self._stat:
            swing = float(np.mean(voltages)) / v_ref
            dyn = n * swing * swing
        else:
            norm = voltages / v_ref
            dyn = float(np.sum(norm * norm))
        return dac.energy_per_conversion * (alpha * n + (1.0 - alpha) * dyn)

    def _array_energy(self, settle_power, settle_time, column_volts, v_fs):
        energy = settle_power * settle_time
        if column_volts is None or not v_fs:
            return energy
        column_volts = np.asarray(column_volts, dtype=float)
        n = column_volts.size
        if self._stat:
            swing = float(np.mean(column_volts)) / v_fs
            dyn = n * swing * swing
        else:
            norm = column_volts / v_fs
            dyn = float(np.sum(norm * norm))
        return energy + self.spec.bitline_energy_per_swing * dyn

    def _adc_energy(self, adc, n_cols, batch, codes):
        base = adc.energy_per_conversion * n_cols * batch
        if codes is None:
            return base
        beta = self.spec.adc_static_fraction
        codes = np.asarray(codes)
        n = codes.size
        bits = adc.config.bits
        if self._stat:
            # First-moment estimate: treat code bits as independent with
            # the mean code's duty cycle.  Approximate by construction —
            # E[popcount(c)] != bits * E[c]/c_max in general.
            duty = float(np.mean(codes)) / max(adc.levels - 1, 1)
            dyn = n * duty
        else:
            dyn = float(np.sum(_popcount(codes))) / bits
        return adc.energy_per_conversion * (beta * n + (1.0 - beta) * dyn)

    def _driver_energy(self, config, activations, voltages, v_ref):
        base = activations * config.energy_per_activation
        if voltages is None or not v_ref or activations <= 0:
            return base
        alpha = self.spec.driver_static_fraction
        voltages = np.asarray(voltages, dtype=float)
        if self._stat:
            # Mean over *active* lines: total drive / activation count.
            swing = float(np.sum(voltages)) / activations / v_ref
            dyn = activations * swing * swing
        else:
            norm = voltages / v_ref
            dyn = float(np.sum(norm * norm))
        return config.energy_per_activation * (
            alpha * activations + (1.0 - alpha) * dyn
        )

    def _wire_energy(self, base_energy, values):
        if values is None:
            return base_energy
        floor = self.spec.wire_activity_floor
        values = np.asarray(values)
        if values.size == 0:
            return base_energy
        density = float(np.count_nonzero(values)) / values.size
        return base_energy * (floor + (1.0 - floor) * density)


# --------------------------------------------------------------------------
# Model selection: process default + context-local override
# --------------------------------------------------------------------------

_MODEL_CACHE: Dict[EnergyModelSpec, EnergyModel] = {}


def model_from_spec(spec: SpecLike) -> EnergyModel:
    """The (cached) model instance for ``spec``."""
    parsed = EnergyModelSpec.parse(spec)
    model = _MODEL_CACHE.get(parsed)
    if model is None:
        if parsed.kind == "static":
            model = StaticEnergyModel(parsed)
        else:
            model = ValueAwareEnergyModel(parsed)
        _MODEL_CACHE[parsed] = model
    return model


def _env_default() -> EnergyModelSpec:
    raw = os.environ.get(ENV_ENERGY_MODEL, "static")
    try:
        return EnergyModelSpec.parse(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_ENERGY_MODEL}={raw!r} is not a recognized energy model"
        ) from None


_PROCESS_DEFAULT: EnergyModelSpec = _env_default()
_SPEC_VAR: ContextVar[Optional[EnergyModelSpec]] = ContextVar(
    "repro_energy_model_spec", default=None
)


def active_spec() -> EnergyModelSpec:
    """The spec charges are priced under right now."""
    spec = _SPEC_VAR.get()
    return spec if spec is not None else _PROCESS_DEFAULT


def active_model() -> EnergyModel:
    """The model instance charges are priced under right now."""
    return model_from_spec(active_spec())


def set_process_default(spec: SpecLike) -> EnergyModelSpec:
    """Pin the process-wide default model (sweep workers call this with
    the spec shipped by the pool initializer); returns the parsed spec."""
    global _PROCESS_DEFAULT
    _PROCESS_DEFAULT = EnergyModelSpec.parse(spec)
    return _PROCESS_DEFAULT


@contextmanager
def use_model(spec: SpecLike) -> Iterator[EnergyModel]:
    """Price every charge inside the block under ``spec``.

    Context-local (a ``ContextVar``), so concurrent asyncio request
    handlers each see their own model, exactly like telemetry scopes.
    """
    parsed = EnergyModelSpec.parse(spec)
    token = _SPEC_VAR.set(parsed)
    try:
        yield model_from_spec(parsed)
    finally:
        _SPEC_VAR.reset(token)
