"""SI unit constants and engineering-notation formatting.

The device and periphery models work in base SI units (volts, amperes,
siemens, seconds, joules, square metres).  These constants keep parameter
tables readable, e.g. ``read_voltage=200 * MILLI``.
"""

from __future__ import annotations

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def engineering_format(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``engineering_format(2.5e-9, "s")
    == "2.5 ns"``.

    Zero, NaN and infinities are passed through without a prefix.
    """
    if value != value or value in (float("inf"), float("-inf")) or value == 0:
        return f"{value} {unit}".strip()
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            return f"{scaled:.{digits}g} {prefix}{unit}".strip()
    scale, prefix = _PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
