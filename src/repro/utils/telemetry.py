"""Cross-layer telemetry: counters, timers and structured run reports.

The paper's machine-level claims (Fig 1, Fig 5, Table I) are all
energy/latency *breakdowns*, so the credibility of the reproduction rests
on end-to-end accounting: every layer that consumes energy or time must
show up in one report, and the per-category shares must sum to the true
total.  This module is the one place that observability lives:

* :class:`Telemetry` — named counters and wall-clock timers.  The clock is
  injectable so tests and sweeps stay deterministic; a process-wide
  *current* instance is always available via :func:`current`, and
  :func:`scoped` pushes a fresh instance for the duration of a job so the
  parallel sweep engine can capture per-job activity in isolation.
* Cost mirroring — :meth:`repro.core.metrics.CostAccumulator.add` mirrors
  every charge into the current telemetry under ``cost.energy.<category>``
  (and latency / data-movement twins), so any scoped job automatically
  carries its full energy breakdown without the app layer doing anything.
* :class:`RunReport` — a JSON-serializable merge of cost breakdowns,
  side counters (crossbar read/write ops, driver activations, sense-amp
  comparisons, solver cache hits/misses) and a static area breakdown,
  with per-category energy/latency/data-movement fractions.  Reports
  merge associatively (:meth:`RunReport.merge` / :meth:`RunReport.reduce`)
  in job order, so reducing per-worker reports is bit-identical to the
  serial reduction.

Instrumentation is call-granular (one dict increment per batched
operation, never per element), keeping overhead on the hot batched VMM
path well under the 5% budget gated by
``benchmarks/test_bench_telemetry.py``.  :func:`disabled` swaps in a
:class:`NullTelemetry` for codepaths that want zero accounting.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "ManualClock",
    "RunReport",
    "current",
    "scoped",
    "disabled",
    "reset",
    "COST_PREFIXES",
]

#: Counter-name prefixes under which :class:`CostAccumulator` charges are
#: mirrored; :meth:`RunReport.from_counters` folds them back into
#: per-category cost breakdowns.
COST_PREFIXES = ("cost.energy.", "cost.latency.", "cost.data_moved.")


class ManualClock:
    """Deterministic clock for tests: advances only when told to."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} s")
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class Telemetry:
    """Named counters and timers for one instrumentation scope."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock: Callable[[], float] = clock or time.perf_counter
        self.counters: Dict[str, float] = {}
        self.timers: Dict[str, float] = {}
        self.timer_counts: Dict[str, int] = {}

    # ------------------------------------------------------------- counters
    def incr(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0 on first use)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def count(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0.0)

    def charge(
        self, category: str, energy: float, latency: float, data_moved: float
    ) -> None:
        """Mirror one cost-accumulator charge as counters (see
        :data:`COST_PREFIXES`)."""
        self.incr(f"cost.energy.{category}", energy)
        self.incr(f"cost.latency.{category}", latency)
        self.incr(f"cost.data_moved.{category}", data_moved)

    # --------------------------------------------------------------- timers
    def record_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under timer ``name``."""
        if seconds < 0:
            raise ValueError(f"cannot record negative duration {seconds}")
        self.timers[name] = self.timers.get(name, 0.0) + seconds
        self.timer_counts[name] = self.timer_counts.get(name, 0) + 1

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body on this instance's clock."""
        start = self.clock()
        try:
            yield
        finally:
            self.record_time(name, self.clock() - start)

    # ------------------------------------------------------------ lifecycle
    def snapshot(self, include_timers: bool = True) -> Dict[str, Dict]:
        """Sorted, JSON-ready copy of the current state.

        Counters are deterministic for a deterministic workload; wall-clock
        timers are not, so sweep reductions that must be bit-identical
        across worker counts pass ``include_timers=False``.
        """
        snap: Dict[str, Dict] = {
            "counters": {k: self.counters[k] for k in sorted(self.counters)}
        }
        if include_timers:
            snap["timers"] = {k: self.timers[k] for k in sorted(self.timers)}
            snap["timer_counts"] = {
                k: self.timer_counts[k] for k in sorted(self.timer_counts)
            }
        return snap

    def reset(self) -> None:
        """Clear all counters and timers."""
        self.counters.clear()
        self.timers.clear()
        self.timer_counts.clear()


class NullTelemetry(Telemetry):
    """Telemetry sink that records nothing (the instrumentation
    kill-switch used by the overhead benchmark and perf-critical callers)."""

    def incr(self, name: str, value: float = 1.0) -> None:  # noqa: D102
        pass

    def charge(
        self, category: str, energy: float, latency: float, data_moved: float
    ) -> None:  # noqa: D102
        pass

    def record_time(self, name: str, seconds: float) -> None:  # noqa: D102
        pass

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:  # noqa: D102
        yield


# Scope stack, held in a ContextVar so concurrent asyncio tasks (the job
# server coalesces and interleaves request handlers) each see their own
# stack: a task that enters ``scoped()`` never captures counters recorded
# by a sibling task that interleaves with it at an await point.  Worker
# processes each get their own copy (module state is per-process), so
# scoped capture behaves identically under the parallel sweep engine's
# process backend and the serial fallback.  The base instance is shared
# process-wide, exactly like the old module-level stack bottom.
_BASE = Telemetry()
_STACK_VAR: ContextVar[Tuple[Telemetry, ...]] = ContextVar(
    "repro_telemetry_stack", default=()
)


def current() -> Telemetry:
    """The telemetry instance instrumented layers write to right now."""
    stack = _STACK_VAR.get()
    return stack[-1] if stack else _BASE


def reset() -> None:
    """Clear the current telemetry scope's state."""
    current().reset()


@contextmanager
def scoped(telemetry: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Push a fresh (or supplied) :class:`Telemetry` for the duration.

    Everything the instrumented layers record inside the block lands on
    the scoped instance only — the mechanism behind per-job capture in
    :mod:`repro.utils.parallel` and per-request capture in
    :mod:`repro.serve`.  Scopes are context-local: two asyncio tasks each
    inside their own ``scoped()`` block cannot cross-contaminate, even
    when their awaits interleave.
    """
    scope = telemetry if telemetry is not None else Telemetry()
    token = _STACK_VAR.set(_STACK_VAR.get() + (scope,))
    try:
        yield scope
    finally:
        _STACK_VAR.reset(token)


@contextmanager
def disabled() -> Iterator[None]:
    """Turn instrumentation off for the duration of the block."""
    with scoped(NullTelemetry()):
        yield


def _merge_numeric(
    into: Dict[str, float], other: Dict[str, float]
) -> Dict[str, float]:
    for key in sorted(other):
        into[key] = into.get(key, 0.0) + other[key]
    return into


@dataclass
class RunReport:
    """One structured, serializable account of a run.

    ``categories`` maps a cost category to its ``{"energy", "latency",
    "data_moved"}`` totals; ``counters``/``timers`` carry the side
    counters; ``area`` is the static per-component area breakdown (mm^2)
    when the run has a hardware inventory attached.
    """

    label: str = "run"
    categories: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)
    area: Dict[str, float] = field(default_factory=dict)

    # -------------------------------------------------------------- totals
    def _total(self, key: str) -> float:
        return sum(c.get(key, 0.0) for c in self.categories.values())

    @property
    def total_energy(self) -> float:
        """Total energy across categories (J)."""
        return self._total("energy")

    @property
    def total_latency(self) -> float:
        """Total latency across categories (s)."""
        return self._total("latency")

    @property
    def total_data_moved(self) -> float:
        """Total data movement across categories (bytes)."""
        return self._total("data_moved")

    @property
    def total_area(self) -> float:
        """Total area across components (mm^2)."""
        return sum(self.area.values())

    # ----------------------------------------------------------- fractions
    def _fractions(self, key: str) -> Dict[str, float]:
        total = self._total(key)
        if total <= 0:
            return {name: 0.0 for name in sorted(self.categories)}
        return {
            name: self.categories[name].get(key, 0.0) / total
            for name in sorted(self.categories)
        }

    def energy_fractions(self) -> Dict[str, float]:
        """Per-category share of total energy (equals the power share for
        categories active over the same interval)."""
        return self._fractions("energy")

    def latency_fractions(self) -> Dict[str, float]:
        """Per-category share of total latency."""
        return self._fractions("latency")

    def movement_fractions(self) -> Dict[str, float]:
        """Per-category share of total data movement."""
        return self._fractions("data_moved")

    def area_fractions(self) -> Dict[str, float]:
        """Per-component share of total area."""
        total = self.total_area
        if total <= 0:
            return {name: 0.0 for name in sorted(self.area)}
        return {name: self.area[name] / total for name in sorted(self.area)}

    def validate(self) -> None:
        """Check the conservation invariant: every fraction in [0, 1] and
        each fraction family sums to 1 when its total is positive."""
        for name, fractions in (
            ("energy", self.energy_fractions()),
            ("latency", self.latency_fractions()),
            ("data_moved", self.movement_fractions()),
            ("area", self.area_fractions()),
        ):
            for category, value in fractions.items():
                if not 0.0 <= value <= 1.0 + 1e-12:
                    raise ValueError(
                        f"{name} fraction of {category!r} out of [0, 1]: {value}"
                    )
            total = sum(fractions.values())
            if fractions and total > 0 and abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"{name} fractions sum to {total}, expected 1"
                )

    # ------------------------------------------------------------- merging
    def merge(self, other: "RunReport") -> "RunReport":
        """Associative element-wise sum of two reports (label kept from
        ``self``); keys are visited in sorted order so folds are
        deterministic."""
        merged = RunReport(
            label=self.label,
            categories={k: dict(v) for k, v in self.categories.items()},
            counters=dict(self.counters),
            timers=dict(self.timers),
            area=dict(self.area),
        )
        for name in sorted(other.categories):
            into = merged.categories.setdefault(
                name, {"energy": 0.0, "latency": 0.0, "data_moved": 0.0}
            )
            _merge_numeric(into, other.categories[name])
        _merge_numeric(merged.counters, other.counters)
        _merge_numeric(merged.timers, other.timers)
        _merge_numeric(merged.area, other.area)
        return merged

    @classmethod
    def reduce(
        cls, reports: Sequence["RunReport"], label: str = "reduced"
    ) -> "RunReport":
        """Fold ``reports`` left-to-right (job order) into one report.

        The fold order is part of the contract: per-job reports collected
        by the sweep engine reduce to bit-identical totals at any worker
        count because jobs are always folded by flat job index.
        """
        out = cls(label=label)
        for report in reports:
            out = out.merge(report)
        out.label = label
        return out

    # ------------------------------------------------------- constructors
    @classmethod
    def from_counters(
        cls,
        counters: Dict[str, float],
        label: str = "run",
        timers: Optional[Dict[str, float]] = None,
        area: Optional[Dict[str, float]] = None,
    ) -> "RunReport":
        """Build a report from a raw counter mapping, folding mirrored
        ``cost.*`` counters (see :data:`COST_PREFIXES`) back into the
        per-category breakdown."""
        categories: Dict[str, Dict[str, float]] = {}
        plain: Dict[str, float] = {}
        for name in sorted(counters):
            value = counters[name]
            for prefix, key in zip(
                COST_PREFIXES, ("energy", "latency", "data_moved")
            ):
                if name.startswith(prefix):
                    category = name[len(prefix):]
                    entry = categories.setdefault(
                        category,
                        {"energy": 0.0, "latency": 0.0, "data_moved": 0.0},
                    )
                    entry[key] += value
                    break
            else:
                plain[name] = value
        return cls(
            label=label,
            categories=categories,
            counters=plain,
            timers=dict(timers or {}),
            area=dict(area or {}),
        )

    @classmethod
    def from_cost_accumulator(
        cls,
        costs,
        label: str = "run",
        counters: Optional[Dict[str, float]] = None,
        timers: Optional[Dict[str, float]] = None,
        area: Optional[Dict[str, float]] = None,
    ) -> "RunReport":
        """Build a report from a :class:`~repro.core.metrics.CostAccumulator`
        plus optional side counters/timers/area."""
        return cls(
            label=label,
            categories=costs.as_dict(),
            counters=dict(counters or {}),
            timers=dict(timers or {}),
            area=dict(area or {}),
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict:
        """JSON-ready dict: base fields plus derived totals/fractions."""
        return {
            "label": self.label,
            "categories": {
                name: {k: self.categories[name][k] for k in sorted(self.categories[name])}
                for name in sorted(self.categories)
            },
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "timers": {k: self.timers[k] for k in sorted(self.timers)},
            "area": {k: self.area[k] for k in sorted(self.area)},
            "totals": {
                "energy": self.total_energy,
                "latency": self.total_latency,
                "data_moved": self.total_data_moved,
                "area": self.total_area,
            },
            "fractions": {
                "energy": self.energy_fractions(),
                "latency": self.latency_fractions(),
                "data_moved": self.movement_fractions(),
                "area": self.area_fractions(),
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize (with derived totals/fractions) to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "RunReport":
        """Inverse of :meth:`to_dict` (derived fields are recomputed, not
        trusted)."""
        return cls(
            label=data.get("label", "run"),
            categories={
                name: dict(entry)
                for name, entry in data.get("categories", {}).items()
            },
            counters=dict(data.get("counters", {})),
            timers=dict(data.get("timers", {})),
            area=dict(data.get("area", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Round-trip partner of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------- display
    def category_table(self) -> List[Dict[str, float]]:
        """Row-per-category summary suitable for printing."""
        ef = self.energy_fractions()
        lf = self.latency_fractions()
        mf = self.movement_fractions()
        return [
            {
                "category": name,
                "energy_J": self.categories[name].get("energy", 0.0),
                "energy_share": ef[name],
                "latency_s": self.categories[name].get("latency", 0.0),
                "latency_share": lf[name],
                "data_moved_B": self.categories[name].get("data_moved", 0.0),
                "movement_share": mf[name],
            }
            for name in sorted(self.categories)
        ]
