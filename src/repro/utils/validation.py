"""Argument-validation helpers.

All validators raise ``ValueError`` with a message naming the offending
parameter, so configuration errors surface at construction time instead of
deep inside a simulation loop.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Require ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Require ``array.shape == shape``.  ``-1`` in ``shape`` matches any size."""
    array = np.asarray(array)
    if len(array.shape) != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {array.shape}"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected != -1 and actual != expected:
            raise ValueError(
                f"{name} axis {axis} must have size {expected}, got shape {array.shape}"
            )
    return array
