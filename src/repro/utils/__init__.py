"""Shared utilities: random-number handling, the parallel sweep engine,
telemetry/run reports, unit helpers, validation.

These helpers are deliberately small and dependency-free so that every
other subpackage (devices, crossbar, testing, EDA ...) can rely on them
without import cycles.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.telemetry import (
    ManualClock,
    NullTelemetry,
    RunReport,
    Telemetry,
)
from repro.utils.parallel import (
    ENV_WORKERS,
    resolve_workers,
    run_blocks,
    run_grid,
    run_trials,
    seed_sequence_from,
    spawn_trial_seeds,
)
from repro.utils.units import (
    KILO,
    MEGA,
    GIGA,
    MILLI,
    MICRO,
    NANO,
    PICO,
    FEMTO,
    engineering_format,
)
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
    check_shape,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "ManualClock",
    "NullTelemetry",
    "RunReport",
    "Telemetry",
    "ENV_WORKERS",
    "resolve_workers",
    "run_blocks",
    "run_grid",
    "run_trials",
    "seed_sequence_from",
    "spawn_trial_seeds",
    "KILO",
    "MEGA",
    "GIGA",
    "MILLI",
    "MICRO",
    "NANO",
    "PICO",
    "FEMTO",
    "engineering_format",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_shape",
]
