"""Parallel, deterministic Monte Carlo sweep engine.

Every statistical experiment in the library — accuracy-vs-yield, ECC
failure-rate Monte Carlo, endurance wear-out sweeps — reduces to the same
shape: a grid of sweep points times a number of independent trials, each
trial consuming its own random stream.  This module is the one place that
shape is implemented, with three hard guarantees:

**Determinism.**  Per-trial generators come from
``numpy.random.SeedSequence`` children of the sweep's root sequence: the
child for flat job ``i`` is ``SeedSequence(root.entropy,
spawn_key=root.spawn_key + (i,))`` — exactly what ``root.spawn`` would
produce, but derivable independently in any process from the root alone
(see :func:`child_seed`).  The stream a job sees therefore depends only on
the root seed and the job's index — never on the worker count, the
chunking, or the scheduling order — so the same seed yields bit-identical
results whether the sweep runs serially, on 2 workers, or on 64.

**Ordered collection.**  Results are returned in job order regardless of
completion order: chunks are submitted contiguously and reassembled by
position.

**Serial fallback.**  ``workers=0`` (the default, also via the
``REPRO_WORKERS`` environment variable) runs every job in-process with the
identical seeding, so test suites stay single-process and the parallel
path can be validated against the serial one bit-for-bit.

Process backend (persistent workers, shared-memory arguments)
-------------------------------------------------------------

With ``workers >= 1`` the pool is *persistent for the sweep*: each worker
process initializes **once**, through the pool initializer, with the task,
the root seed and the full ``task_args`` — and every ``numpy`` array found
anywhere inside ``task_args`` (nested tuples/lists/dicts included) is
carried in a single :mod:`multiprocessing.shared_memory` segment rather
than pickled.  After initialization, submitting a chunk of jobs ships only
an ``(index_lo, index_hi)`` descriptor: workers re-derive each job's seed
from the root and read the experiment state they attached at startup.

This is what fixes the "parallel loses to serial" regression recorded in
``BENCH_sweep.json``: the previous engine re-pickled ``task_args`` (model
weights, train/test sets) into every submitted chunk, so job payloads
dominated the actual Monte Carlo work.

Worker-side arrays are *read-only views* of the shared segment.  Tasks
must not mutate ``task_args`` (they never could portably: the serial path
shares the caller's arrays across all jobs).  The segment is unlinked when
the sweep finishes, normally or by exception.

Tasks submitted to the process backend must be picklable — i.e. defined at
module level, not closures.  Consumers (``repro.apps.nn``,
``repro.testing.ecc``, ``repro.faults.sweeps``) each define a module-level
trial function and pass experiment state through ``task_args``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils import telemetry
from repro.utils.rng import RNGLike, ensure_rng

#: Environment variable consulted when ``workers`` is not given explicitly.
ENV_WORKERS = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the worker count: explicit argument, else ``REPRO_WORKERS``,
    else ``0`` (serial in-process execution).

    ``0`` means *serial*; ``n >= 1`` means a pool of ``n`` processes;
    ``-1`` means *all cores* (``os.cpu_count()``), both as an explicit
    argument and through ``REPRO_WORKERS=-1``.
    """
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "0")
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{ENV_WORKERS} must be an integer, got {raw!r}"
            ) from None
    if workers == -1:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (or -1 = all cores), got {workers}")
    return workers


def seed_sequence_from(rng: RNGLike) -> np.random.SeedSequence:
    """Build the root :class:`~numpy.random.SeedSequence` for a sweep.

    ``None`` gives fresh entropy; an ``int`` seeds directly; an existing
    ``Generator`` contributes one draw from its stream (so a caller that
    has already consumed entropy — e.g. for training — hands the sweep a
    reproducible continuation of that stream).  The Generator draw covers
    the full closed range ``[0, 2**63 - 1]`` (``endpoint=True``; the
    historical exclusive bound silently dropped the top seed value).
    """
    if rng is None:
        return np.random.SeedSequence()
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.SeedSequence(int(rng))
    if isinstance(rng, np.random.Generator):
        return np.random.SeedSequence(
            int(rng.integers(0, 2**63 - 1, endpoint=True))
        )
    raise TypeError(
        f"rng must be None, an int seed, a SeedSequence or a Generator, "
        f"got {type(rng).__name__}"
    )


def child_seed(
    root: np.random.SeedSequence, index: int
) -> np.random.SeedSequence:
    """The child sequence for flat job ``index``.

    Bit-identical to ``root.spawn(index + 1)[index]`` (numpy spawns
    children as ``SeedSequence(entropy, spawn_key=parent_key + (i,))``),
    but stateless: any process holding only the root can derive any job's
    stream without shipping per-job ``SeedSequence`` objects.  This
    equivalence is the engine's seeding contract and is pinned by tests.
    """
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + (index,),
        pool_size=root.pool_size,
    )


def spawn_trial_seeds(
    rng: RNGLike, count: int
) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent child seed sequences, one per job."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = seed_sequence_from(rng)
    return [child_seed(root, i) for i in range(count)]


# --------------------------------------------------------------------------
# Shared-memory argument registry
# --------------------------------------------------------------------------


class _SharedRef:
    """Placeholder left in the ``task_args`` template where an array was
    lifted into the shared segment; resolved back to a view in workers."""

    def __init__(self, index: int) -> None:
        self.index = index


def _extract_shared(obj: Any, arrays: List[np.ndarray]) -> Any:
    """Replace every plain ndarray in ``obj`` (recursing through tuples,
    lists and dicts) with a :class:`_SharedRef`, collecting the arrays."""
    if type(obj) is np.ndarray and not obj.dtype.hasobject:
        arrays.append(obj)
        return _SharedRef(len(arrays) - 1)
    if isinstance(obj, tuple):
        return tuple(_extract_shared(v, arrays) for v in obj)
    if isinstance(obj, list):
        return [_extract_shared(v, arrays) for v in obj]
    if isinstance(obj, dict):
        return {k: _extract_shared(v, arrays) for k, v in obj.items()}
    return obj


def _resolve_shared(obj: Any, views: Sequence[np.ndarray]) -> Any:
    """Inverse of :func:`_extract_shared`: swap refs back for array views."""
    if isinstance(obj, _SharedRef):
        return views[obj.index]
    if isinstance(obj, tuple):
        return tuple(_resolve_shared(v, views) for v in obj)
    if isinstance(obj, list):
        return [_resolve_shared(v, views) for v in obj]
    if isinstance(obj, dict):
        return {k: _resolve_shared(v, views) for k, v in obj.items()}
    return obj


class SharedArrayPack:
    """All of a sweep's arrays packed into one shared-memory segment.

    The parent copies each array in once at 64-byte-aligned offsets;
    workers attach by name and rebuild zero-copy read-only views from the
    ``(offset, shape, dtype)`` specs.  One segment per sweep keeps the
    fd/unlink bookkeeping trivial regardless of how many arrays ride in
    ``task_args``.
    """

    def __init__(self, arrays: Sequence[np.ndarray]) -> None:
        self.specs: List[Tuple[int, Tuple[int, ...], str]] = []
        staged: List[Tuple[int, np.ndarray]] = []
        offset = 0
        for arr in arrays:
            arr = np.ascontiguousarray(arr)
            offset = -(-offset // 64) * 64
            self.specs.append((offset, arr.shape, arr.dtype.str))
            staged.append((offset, arr))
            offset += arr.nbytes
        self.shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        for off, arr in staged:
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=self.shm.buf, offset=off
            )
            view[...] = arr

    @property
    def name(self) -> str:
        """Segment name workers attach to."""
        return self.shm.name

    @staticmethod
    def attach(
        name: str, specs: Sequence[Tuple[int, Tuple[int, ...], str]]
    ) -> Tuple[shared_memory.SharedMemory, List[np.ndarray]]:
        """Worker side: attach the segment and rebuild read-only views."""
        shm = shared_memory.SharedMemory(name=name)
        views = []
        for off, shape, dtype in specs:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off
            )
            view.flags.writeable = False
            views.append(view)
        return shm, views

    def release(self) -> None:
        """Close and unlink the segment (parent side, idempotent)."""
        try:
            self.shm.close()
        finally:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# --------------------------------------------------------------------------
# Worker process state
# --------------------------------------------------------------------------

#: Per-worker-process sweep state, installed once by the pool initializer.
_WORKER_STATE: Dict[str, Any] = {}


def _worker_init(
    task: Callable[..., Any],
    root: np.random.SeedSequence,
    template: Any,
    pack_name: Optional[str],
    specs: Sequence[Tuple[int, Tuple[int, ...], str]],
    capture: bool,
    energy_spec: Optional[Dict[str, Any]] = None,
) -> None:
    """Pool initializer: runs once per worker process.

    Attaches the shared-memory segment (if any), resolves the
    ``task_args`` template back into arrays, installs the parent's active
    energy-model spec as the worker's process default (so value-aware
    sweeps stay bit-identical to the serial path), and stashes everything
    in a module global so per-chunk submissions carry indices only.
    """
    if energy_spec is not None:
        # Deferred import: repro.costs pulls in repro.core, and the sweep
        # engine must stay importable below both.
        import repro.costs.models as energy_models

        energy_models.set_process_default(
            energy_models.EnergyModelSpec.parse(energy_spec)
        )
    shm, views = (None, [])
    if pack_name is not None:
        shm, views = SharedArrayPack.attach(pack_name, specs)
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        task=task,
        task_args=_resolve_shared(template, views),
        root=root,
        capture=capture,
        shm=shm,  # keep the mapping alive for the worker's lifetime
    )


def _worker_chunk(lo: int, hi: int) -> List[Any]:
    """Worker entry point: run jobs ``[lo, hi)`` from the installed state.

    The entire per-chunk payload is this ``(lo, hi)`` descriptor — seeds
    are re-derived from the root via :func:`child_seed`.
    """
    state = _WORKER_STATE
    seeds = [child_seed(state["root"], i) for i in range(lo, hi)]
    return _run_chunk(
        state["task"], range(lo, hi), seeds, state["task_args"],
        state["capture"],
    )


def _run_chunk(
    task: Callable[..., Any],
    indices: Sequence[int],
    seeds: Sequence[np.random.SeedSequence],
    task_args: Tuple[Any, ...],
    capture: bool = False,
) -> List[Any]:
    """Run a contiguous chunk of jobs in-process.

    With ``capture=True`` each job runs inside its own telemetry scope and
    the chunk returns ``(result, counters)`` pairs.  Only counters are
    snapshotted — wall-clock timers vary run to run, and per-job capture
    must stay bit-identical between the serial and process backends.
    """
    if not capture:
        return [
            task(i, np.random.default_rng(ss), *task_args)
            for i, ss in zip(indices, seeds)
        ]
    out: List[Any] = []
    for i, ss in zip(indices, seeds):
        with telemetry.scoped() as scope:
            result = task(i, np.random.default_rng(ss), *task_args)
        out.append((result, scope.snapshot(include_timers=False)["counters"]))
    return out


def _chunk_bounds(n_jobs: int, workers: int, chunk_size: Optional[int]) -> int:
    if chunk_size is None:
        # ~4 chunks per worker keeps the pool busy; per-chunk payloads are
        # two integers, so granularity is nearly free.
        chunk_size = max(1, -(-n_jobs // (workers * 4)))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


def _run_pooled(
    task: Callable[..., Any],
    n_jobs: int,
    root: np.random.SeedSequence,
    workers: int,
    chunk: int,
    task_args: Tuple[Any, ...],
    capture: bool,
) -> List[Any]:
    """Fan ``n_jobs`` out over a persistent, shared-memory-initialized
    worker pool; returns results in job order."""
    arrays: List[np.ndarray] = []
    template = _extract_shared(task_args, arrays)
    pack = SharedArrayPack(arrays) if arrays else None
    import repro.costs.models as energy_models  # deferred: avoids cycle

    energy_spec = energy_models.active_spec().to_dict()
    results: List[Any] = []
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(
                task,
                root,
                template,
                pack.name if pack is not None else None,
                pack.specs if pack is not None else (),
                capture,
                energy_spec,
            ),
        ) as pool:
            bounds = [
                (lo, min(lo + chunk, n_jobs))
                for lo in range(0, n_jobs, chunk)
            ]
            futures = [pool.submit(_worker_chunk, lo, hi) for lo, hi in bounds]
            for (lo, hi), future in zip(bounds, futures):
                try:
                    results.extend(future.result())
                except BrokenProcessPool as exc:
                    raise RuntimeError(
                        f"sweep worker crashed while running jobs "
                        f"[{lo}, {hi}) of {n_jobs} (pool of {workers}); "
                        f"the shared-memory segment has been released"
                    ) from exc
    finally:
        if pack is not None:
            pack.release()
    return results


def run_trials(
    task: Callable[..., Any],
    n_trials: int,
    *,
    seed: RNGLike = 0,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    task_args: Tuple[Any, ...] = (),
    capture_telemetry: bool = False,
) -> Any:
    """Run ``task(trial_index, rng, *task_args)`` for every trial.

    Results are returned in trial order and are bit-identical for a given
    ``seed`` at any ``workers``/``chunk_size`` setting (each trial's
    generator is derived from the root seed by index, never shared).

    Parameters
    ----------
    task:
        Module-level callable ``task(trial, rng, *task_args)``.  Must be
        picklable when ``workers >= 1``.
    n_trials:
        Number of independent trials (jobs).
    seed:
        Root seed (``None`` / int / ``Generator`` / ``SeedSequence``).
    workers:
        ``0`` = serial; ``n >= 1`` = persistent process pool of ``n``;
        ``-1`` = all cores; ``None`` = consult ``REPRO_WORKERS`` (default
        serial).  Workers initialize once from the shared-memory argument
        pack; jobs ship as index ranges only.
    chunk_size:
        Jobs per submitted chunk (parallel backend only); affects
        scheduling granularity, never results.
    capture_telemetry:
        When ``True`` each trial runs in its own telemetry scope and the
        return value becomes ``(results, reports)`` where ``reports`` is
        the per-job counter dict in flat job order.  Counter capture is
        deterministic, so the reports (and any reduction of them) are
        bit-identical at every worker count.
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    workers = resolve_workers(workers)
    root = seed_sequence_from(seed)
    if workers == 0 or n_trials == 0:
        seeds = [child_seed(root, i) for i in range(n_trials)]
        results = _run_chunk(
            task, range(n_trials), seeds, task_args, capture_telemetry
        )
    else:
        chunk = _chunk_bounds(n_trials, workers, chunk_size)
        results = _run_pooled(
            task, n_trials, root, workers, chunk, task_args,
            capture_telemetry,
        )
    if not capture_telemetry:
        return results
    return [r for r, _ in results], [c for _, c in results]


def _grid_job(
    job: int,
    rng: np.random.Generator,
    task: Callable[..., Any],
    points: Sequence[Any],
    trials: int,
    task_args: Tuple[Any, ...],
) -> Any:
    point = points[job // trials]
    trial = job % trials
    return task(point, trial, rng, *task_args)


def run_grid(
    task: Callable[..., Any],
    points: Sequence[Any],
    *,
    trials: int = 1,
    seed: RNGLike = 0,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    task_args: Tuple[Any, ...] = (),
    capture_telemetry: bool = False,
) -> Any:
    """Fan a trial grid out: ``task(point, trial, rng, *task_args)`` for
    every ``(point, trial)`` pair, point-major.

    Returns ``results[p][t]`` nested by point then trial, in order.  Job
    seeding is flat over the ``len(points) * trials`` grid, so adding
    workers — or re-slicing the same points into separate calls with the
    same flat indices — never changes any trial's stream.

    With ``capture_telemetry=True`` returns ``(results, reports)`` where
    ``reports`` is the per-job counter dict in flat (point-major) job
    order — see :func:`run_trials`.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    points = list(points)
    flat = run_trials(
        _grid_job,
        len(points) * trials,
        seed=seed,
        workers=workers,
        chunk_size=chunk_size,
        task_args=(task, points, trials, task_args),
        capture_telemetry=capture_telemetry,
    )
    if capture_telemetry:
        flat, reports = flat
    nested = [
        flat[p * trials : (p + 1) * trials] for p in range(len(points))
    ]
    if capture_telemetry:
        return nested, reports
    return nested


def _block_job(
    block: int,
    rng: np.random.Generator,
    task: Callable[..., Any],
    n_trials: int,
    block_size: int,
    task_args: Tuple[Any, ...],
) -> Any:
    lo = block * block_size
    count = min(block_size, n_trials - lo)
    return task(count, rng, *task_args)


def run_blocks(
    task: Callable[..., Any],
    n_trials: int,
    *,
    block_size: int = 512,
    seed: RNGLike = 0,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    task_args: Tuple[Any, ...] = (),
    capture_telemetry: bool = False,
) -> Any:
    """Vectorized-backend variant: trials are partitioned into fixed
    blocks and ``task(block_count, rng, *task_args)`` evaluates a whole
    block at once (returning one result per trial in the block, e.g. a
    boolean failure vector).  Results are concatenated in trial order.

    The unit of determinism is the *block*: one derived stream per block,
    so results depend on ``seed`` and ``block_size`` but never on the
    worker count.  Callers should treat ``block_size`` as part of the
    experiment configuration, not a tuning knob.

    With ``capture_telemetry=True`` returns ``(results, reports)`` where
    ``reports`` holds one counter dict per *block* in block order.
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    n_blocks = -(-n_trials // block_size)
    per_block = run_trials(
        _block_job,
        n_blocks,
        seed=seed,
        workers=workers,
        chunk_size=chunk_size,
        task_args=(task, n_trials, block_size, task_args),
        capture_telemetry=capture_telemetry,
    )
    reports: List[Any] = []
    if capture_telemetry:
        per_block, reports = per_block
    if not per_block:
        out = np.asarray([])
    else:
        out = np.concatenate([np.asarray(b) for b in per_block])
    if capture_telemetry:
        return out, reports
    return out
