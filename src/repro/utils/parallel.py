"""Parallel, deterministic Monte Carlo sweep engine.

Every statistical experiment in the library — accuracy-vs-yield, ECC
failure-rate Monte Carlo, endurance wear-out sweeps — reduces to the same
shape: a grid of sweep points times a number of independent trials, each
trial consuming its own random stream.  This module is the one place that
shape is implemented, with three hard guarantees:

**Determinism.**  Per-trial generators come from
``numpy.random.SeedSequence.spawn``: the root seed spawns exactly one
child sequence per *job* (trial or block), indexed by job order.  The
stream a job sees therefore depends only on the root seed and the job's
index — never on the worker count, the chunking, or the scheduling order —
so the same seed yields bit-identical results whether the sweep runs
serially, on 2 workers, or on 64.

**Ordered collection.**  Results are returned in job order regardless of
completion order: chunks are submitted contiguously and reassembled by
position.

**Serial fallback.**  ``workers=0`` (the default, also via the
``REPRO_WORKERS`` environment variable) runs every job in-process with the
identical seeding, so test suites stay single-process and the parallel
path can be validated against the serial one bit-for-bit.

Tasks submitted to the process backend must be picklable — i.e. defined at
module level, not closures.  Consumers (``repro.apps.nn``,
``repro.testing.ecc``, ``repro.faults.sweeps``) each define a module-level
trial function and pass experiment state through ``task_args``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils import telemetry
from repro.utils.rng import RNGLike, ensure_rng

#: Environment variable consulted when ``workers`` is not given explicitly.
ENV_WORKERS = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the worker count: explicit argument, else ``REPRO_WORKERS``,
    else ``0`` (serial in-process execution).

    ``0`` means *serial*; ``n >= 1`` means a pool of ``n`` processes.
    """
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "0")
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{ENV_WORKERS} must be an integer, got {raw!r}"
            ) from None
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def seed_sequence_from(rng: RNGLike) -> np.random.SeedSequence:
    """Build the root :class:`~numpy.random.SeedSequence` for a sweep.

    ``None`` gives fresh entropy; an ``int`` seeds directly; an existing
    ``Generator`` contributes one draw from its stream (so a caller that
    has already consumed entropy — e.g. for training — hands the sweep a
    reproducible continuation of that stream).
    """
    if rng is None:
        return np.random.SeedSequence()
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.SeedSequence(int(rng))
    if isinstance(rng, np.random.Generator):
        return np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
    raise TypeError(
        f"rng must be None, an int seed, a SeedSequence or a Generator, "
        f"got {type(rng).__name__}"
    )


def spawn_trial_seeds(
    rng: RNGLike, count: int
) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent child seed sequences, one per job."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return seed_sequence_from(rng).spawn(count)


def _run_chunk(
    task: Callable[..., Any],
    indices: Sequence[int],
    seeds: Sequence[np.random.SeedSequence],
    task_args: Tuple[Any, ...],
    capture: bool = False,
) -> List[Any]:
    """Worker entry point: run a contiguous chunk of jobs in-process.

    With ``capture=True`` each job runs inside its own telemetry scope and
    the chunk returns ``(result, counters)`` pairs.  Only counters are
    snapshotted — wall-clock timers vary run to run, and per-job capture
    must stay bit-identical between the serial and process backends.
    """
    if not capture:
        return [
            task(i, np.random.default_rng(ss), *task_args)
            for i, ss in zip(indices, seeds)
        ]
    out: List[Any] = []
    for i, ss in zip(indices, seeds):
        with telemetry.scoped() as scope:
            result = task(i, np.random.default_rng(ss), *task_args)
        out.append((result, scope.snapshot(include_timers=False)["counters"]))
    return out


def _chunk_bounds(n_jobs: int, workers: int, chunk_size: Optional[int]) -> int:
    if chunk_size is None:
        # ~4 chunks per worker keeps the pool busy without per-job IPC cost.
        chunk_size = max(1, -(-n_jobs // (workers * 4)))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


def run_trials(
    task: Callable[..., Any],
    n_trials: int,
    *,
    seed: RNGLike = 0,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    task_args: Tuple[Any, ...] = (),
    capture_telemetry: bool = False,
) -> Any:
    """Run ``task(trial_index, rng, *task_args)`` for every trial.

    Results are returned in trial order and are bit-identical for a given
    ``seed`` at any ``workers``/``chunk_size`` setting (each trial's
    generator is spawned from the root seed by index, never shared).

    Parameters
    ----------
    task:
        Module-level callable ``task(trial, rng, *task_args)``.  Must be
        picklable when ``workers >= 1``.
    n_trials:
        Number of independent trials (jobs).
    seed:
        Root seed (``None`` / int / ``Generator`` / ``SeedSequence``).
    workers:
        ``0`` = serial; ``n >= 1`` = process pool of ``n``; ``None`` =
        consult ``REPRO_WORKERS`` (default serial).
    chunk_size:
        Jobs per submitted chunk (parallel backend only); affects
        scheduling granularity, never results.
    capture_telemetry:
        When ``True`` each trial runs in its own telemetry scope and the
        return value becomes ``(results, reports)`` where ``reports`` is
        the per-job counter dict in flat job order.  Counter capture is
        deterministic, so the reports (and any reduction of them) are
        bit-identical at every worker count.
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    workers = resolve_workers(workers)
    seeds = spawn_trial_seeds(seed, n_trials)
    indices = list(range(n_trials))
    if workers == 0 or n_trials == 0:
        results = _run_chunk(task, indices, seeds, task_args, capture_telemetry)
    else:
        chunk = _chunk_bounds(n_trials, workers, chunk_size)
        results = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_chunk,
                    task,
                    indices[lo : lo + chunk],
                    seeds[lo : lo + chunk],
                    task_args,
                    capture_telemetry,
                )
                for lo in range(0, n_trials, chunk)
            ]
            for future in futures:  # submit order == job order
                results.extend(future.result())
    if not capture_telemetry:
        return results
    return [r for r, _ in results], [c for _, c in results]


def _grid_job(
    job: int,
    rng: np.random.Generator,
    task: Callable[..., Any],
    points: Sequence[Any],
    trials: int,
    task_args: Tuple[Any, ...],
) -> Any:
    point = points[job // trials]
    trial = job % trials
    return task(point, trial, rng, *task_args)


def run_grid(
    task: Callable[..., Any],
    points: Sequence[Any],
    *,
    trials: int = 1,
    seed: RNGLike = 0,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    task_args: Tuple[Any, ...] = (),
    capture_telemetry: bool = False,
) -> Any:
    """Fan a trial grid out: ``task(point, trial, rng, *task_args)`` for
    every ``(point, trial)`` pair, point-major.

    Returns ``results[p][t]`` nested by point then trial, in order.  Job
    seeding is flat over the ``len(points) * trials`` grid, so adding
    workers — or re-slicing the same points into separate calls with the
    same flat indices — never changes any trial's stream.

    With ``capture_telemetry=True`` returns ``(results, reports)`` where
    ``reports`` is the per-job counter dict in flat (point-major) job
    order — see :func:`run_trials`.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    points = list(points)
    flat = run_trials(
        _grid_job,
        len(points) * trials,
        seed=seed,
        workers=workers,
        chunk_size=chunk_size,
        task_args=(task, points, trials, task_args),
        capture_telemetry=capture_telemetry,
    )
    if capture_telemetry:
        flat, reports = flat
    nested = [
        flat[p * trials : (p + 1) * trials] for p in range(len(points))
    ]
    if capture_telemetry:
        return nested, reports
    return nested


def _block_job(
    block: int,
    rng: np.random.Generator,
    task: Callable[..., Any],
    n_trials: int,
    block_size: int,
    task_args: Tuple[Any, ...],
) -> Any:
    lo = block * block_size
    count = min(block_size, n_trials - lo)
    return task(count, rng, *task_args)


def run_blocks(
    task: Callable[..., Any],
    n_trials: int,
    *,
    block_size: int = 512,
    seed: RNGLike = 0,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    task_args: Tuple[Any, ...] = (),
    capture_telemetry: bool = False,
) -> Any:
    """Vectorized-backend variant: trials are partitioned into fixed
    blocks and ``task(block_count, rng, *task_args)`` evaluates a whole
    block at once (returning one result per trial in the block, e.g. a
    boolean failure vector).  Results are concatenated in trial order.

    The unit of determinism is the *block*: one spawned stream per block,
    so results depend on ``seed`` and ``block_size`` but never on the
    worker count.  Callers should treat ``block_size`` as part of the
    experiment configuration, not a tuning knob.

    With ``capture_telemetry=True`` returns ``(results, reports)`` where
    ``reports`` holds one counter dict per *block* in block order.
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    n_blocks = -(-n_trials // block_size)
    per_block = run_trials(
        _block_job,
        n_blocks,
        seed=seed,
        workers=workers,
        chunk_size=chunk_size,
        task_args=(task, n_trials, block_size, task_args),
        capture_telemetry=capture_telemetry,
    )
    reports: List[Any] = []
    if capture_telemetry:
        per_block, reports = per_block
    if not per_block:
        out = np.asarray([])
    else:
        out = np.concatenate([np.asarray(b) for b in per_block])
    if capture_telemetry:
        return out, reports
    return out
