"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (device variation, fault
injection, workload generation) accepts either ``None``, an integer seed,
or a ``numpy.random.Generator``.  ``ensure_rng`` normalizes all three to a
``Generator`` so results are reproducible when a seed is supplied and
independent when one is not.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RNGLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh entropy), an ``int`` seed, or an existing
        ``Generator`` (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or numpy Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng: RNGLike, count: int) -> list:
    """Split ``rng`` into ``count`` statistically independent generators.

    Used when a simulation fans out into parallel stochastic components
    (e.g. one RNG per crossbar tile) that must not share a stream.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
