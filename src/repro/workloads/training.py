"""In-situ training: outer-product updates with write-verify on device.

The paper's Section IV names on-chip (in-situ) training as the workload
that stresses everything inference hides: every weight update is a
*write*, so programming variation, finite endurance and drift all act on
the live model.  This module closes that loop on the existing stack:

* a differential crossbar pair holds the classifier (positive/negative
  arrays, PRIME-style), with conductance targets snapped to the device's
  :class:`~repro.devices.reram.ConductanceLevels` ladder;
* gradients are rank-1 **outer products** ``x δᵀ`` accumulated over the
  mini-batch (the analog-friendly update rule — no transposed read
  needed), with a vectorized fast path bit-equal to the scalar reference;
* updates land through a **write-verify** loop whose per-pulse math is
  exactly :meth:`repro.devices.reram.ReRAMCell.program_with_verify`
  (lognormal landing, physical clip, noise-margin acceptance), pulsing
  only the cells whose quantized target moved;
* every pulse is charged as programming energy by the active
  :class:`~repro.costs.models.EnergyModel` and consumed from per-cell
  Weibull write budgets via :class:`~repro.faults.endurance
  .EnduranceSimulator` — cells die mid-training and stay dead;
* between epochs the arrays :meth:`~repro.crossbar.array.CrossbarArray
  .relax` (drift), so the accuracy-vs-epochs curve degrades the way
  Section III says it must.

Both write-noise backends (``"scalar"`` pulse-by-pulse reference and the
``"fast"`` vectorized path) draw from one dedicated write-noise stream in
the same order, so trajectories are bit-identical **including the final
generator state** — the property :func:`explore_training` and the
benchmark gate pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.datasets import gaussian_blobs
from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.devices.reram import ConductanceLevels
from repro.devices.variability import (
    DriftModel,
    ReadNoiseModel,
    VariabilityStack,
    WriteVariationModel,
)
from repro.faults.endurance import EnduranceModel, EnduranceSimulator
from repro.utils.parallel import run_grid
from repro.utils.rng import RNGLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "TrainingParams",
    "outer_product_delta",
    "InSituDense",
    "InSituTrainer",
    "train_insitu",
    "explore_training",
]

_BACKENDS = ("auto", "fast", "scalar")


def outer_product_delta(
    x: np.ndarray, delta: np.ndarray, backend: str = "auto"
) -> np.ndarray:
    """Mini-batch gradient as a sum of rank-1 outer products.

    Returns ``sum_b outer(x[b], delta[b])`` — the quantity an analog
    outer-product programming step applies in one shot.  ``"scalar"`` is
    the pulse-order reference (explicit ``i, j`` loops); ``"fast"``
    (the ``"auto"`` choice) accumulates :func:`numpy.outer` per sample in
    the same summation order, so the two are **bit-equal**, not merely
    close.
    """
    if backend not in _BACKENDS:
        raise ValueError(
            f"backend must be one of {_BACKENDS}, got {backend!r}"
        )
    x = np.asarray(x, dtype=float)
    delta = np.asarray(delta, dtype=float)
    if x.ndim != 2 or delta.ndim != 2 or x.shape[0] != delta.shape[0]:
        raise ValueError(
            f"need matching batches: x {x.shape}, delta {delta.shape}"
        )
    batch, n_in = x.shape
    n_out = delta.shape[1]
    grad = np.zeros((n_in, n_out))
    if backend == "scalar":
        for b in range(batch):
            for i in range(n_in):
                for j in range(n_out):
                    grad[i, j] += x[b, i] * delta[b, j]
        return grad
    for b in range(batch):
        grad += np.outer(x[b], delta[b])
    return grad


def _softmax(z: np.ndarray) -> np.ndarray:
    shifted = z - np.max(z, axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=-1, keepdims=True)


@dataclass
class TrainingParams:
    """One in-situ training run's configuration.

    The endurance default is deliberately tiny (tens of writes, not the
    1e7 of :class:`EnduranceModel`) so device death is visible within a
    few epochs at laptop scale — the accelerated-aging idiom used
    throughout the faults tier.  A frequently-updated cell sees ~30
    verify pulses over five epochs at the default geometry.
    """

    n_features: int = 16
    n_classes: int = 4
    n_samples: int = 256
    epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 0.5
    w_max: float = 1.0
    write_sigma: float = 0.05        # lognormal programming noise
    max_write_iterations: int = 5    # verify-loop pulse cap per update
    n_levels: int = 16               # conductance ladder resolution
    characteristic_life: float = 12.0
    endurance_shape: float = 2.0
    drift_nu: float = 0.01
    aging_seconds: float = 1000.0    # drift time simulated between epochs

    def __post_init__(self) -> None:
        check_positive("n_features", self.n_features)
        check_positive("n_classes", self.n_classes)
        check_positive("n_samples", self.n_samples)
        check_positive("epochs", self.epochs)
        check_positive("batch_size", self.batch_size)
        check_positive("learning_rate", self.learning_rate)
        check_positive("w_max", self.w_max)
        check_non_negative("write_sigma", self.write_sigma)
        check_positive("max_write_iterations", self.max_write_iterations)
        if self.n_levels < 2:
            raise ValueError(f"n_levels must be >= 2, got {self.n_levels}")
        check_positive("characteristic_life", self.characteristic_life)
        check_positive("endurance_shape", self.endurance_shape)
        check_non_negative("drift_nu", self.drift_nu)
        check_non_negative("aging_seconds", self.aging_seconds)


class InSituDense:
    """A dense classifier held on a differential crossbar pair.

    Weights ``w in [-w_max, w_max]`` map to ``G_plus - G_minus``: the
    positive part onto one array, the magnitude of the negative part onto
    the other, each snapped to the conductance ladder.  The arrays carry
    the *drift* model (state decays physically between epochs) but their
    own write model is ideal — write noise is drawn here, from
    ``write_rng``, so the scalar and fast verify backends consume one
    stream in one order.
    """

    def __init__(
        self,
        params: TrainingParams,
        *,
        rng: RNGLike = None,
        write_rng: RNGLike = None,
    ) -> None:
        self.params = params
        init_rng = ensure_rng(rng)
        self.write_rng = ensure_rng(write_rng)
        self.levels = ConductanceLevels(n_levels=params.n_levels)
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.0),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=params.drift_nu),
        )
        config = CrossbarConfig(
            rows=params.n_features, cols=params.n_classes, levels=self.levels
        )
        self.pos = CrossbarArray(config, variability=stack)
        self.neg = CrossbarArray(
            CrossbarConfig(
                rows=params.n_features,
                cols=params.n_classes,
                levels=self.levels,
            ),
            variability=stack,
        )
        self.w = init_rng.uniform(
            -0.1 * params.w_max,
            0.1 * params.w_max,
            size=(params.n_features, params.n_classes),
        )
        self.bias = np.zeros(params.n_classes)
        # Deposit the initial weights (ideal first programming).
        for array, targets in zip(self.arrays, self.targets()):
            array.program(targets)

    @property
    def arrays(self) -> Tuple[CrossbarArray, CrossbarArray]:
        """The (positive, negative) crossbar pair."""
        return (self.pos, self.neg)

    @property
    def _g_scale(self) -> float:
        return self.params.w_max / (self.levels.g_max - self.levels.g_min)

    def _quantize(self, g: np.ndarray) -> np.ndarray:
        """Snap conductances to the ladder (vectorized ``quantize``)."""
        lv = self.levels
        idx = np.clip(
            np.round((g - lv.g_min) / lv.spacing), 0, lv.n_levels - 1
        )
        return lv.g_min + idx * lv.spacing

    def targets(self) -> Tuple[np.ndarray, np.ndarray]:
        """Ladder-quantized conductance targets for the current shadow
        weights: ``(G_plus, G_minus)``."""
        lv = self.levels
        span = lv.g_max - lv.g_min
        wp = np.clip(self.w, 0.0, self.params.w_max)
        wn = np.clip(-self.w, 0.0, self.params.w_max)
        gp = lv.g_min + wp / self.params.w_max * span
        gn = lv.g_min + wn / self.params.w_max * span
        return self._quantize(gp), self._quantize(gn)

    def forward(self, x: np.ndarray, noisy: bool = False) -> np.ndarray:
        """Analog logits: differential column currents rescaled to weight
        units plus the digital bias.  Dead cells and drift show up here —
        the forward pass reads the *device* state, not the shadow."""
        x = np.asarray(x, dtype=float)
        i_pos = self.pos.mvm_batch(x, noisy=noisy)
        i_neg = self.neg.mvm_batch(x, noisy=noisy)
        return (i_pos - i_neg) * self._g_scale + self.bias

    def predict(self, x: np.ndarray, noisy: bool = False) -> np.ndarray:
        """Class decisions from the analog forward pass."""
        return np.argmax(self.forward(x, noisy=noisy), axis=1)

    def _write_verify(
        self, array: CrossbarArray, targets: np.ndarray, backend: str
    ) -> np.ndarray:
        """Round-major write-verify: pulse every out-of-margin cell, read
        back, repeat.  Per-pulse math is line-for-line
        :meth:`ReRAMCell.program_with_verify`'s program step: land on
        ``target * exp(sigma * z)``, clip to the physical range, accept
        once within the level's noise margin.  Returns the per-cell pulse
        counts (the endurance debit).

        Backends differ only in how ``z`` is drawn from ``write_rng``:
        ``"scalar"`` one call per needy cell in row-major order,
        ``"fast"`` one array fill — same values, same final state.
        """
        sigma = self.params.write_sigma
        margin = self.levels.noise_margin
        stuck = array.stuck_mask
        writes = np.zeros(array.shape, dtype=float)
        for _ in range(self.params.max_write_iterations):
            needy = (
                np.abs(array.healthy_conductances() - targets) > margin
            ) & ~stuck
            n = int(needy.sum())
            if n == 0:
                break
            if sigma == 0.0:
                landed = targets
            else:
                if backend == "scalar":
                    z = np.empty(n)
                    for k in range(n):
                        z[k] = self.write_rng.standard_normal()
                else:
                    z = self.write_rng.standard_normal(n)
                factor = np.ones(array.shape)
                factor[needy] = np.exp(sigma * z)
                landed = targets * factor
            array.write_cells(needy, landed)
            writes += needy
        return writes

    def apply_update(
        self, grad: np.ndarray, bias_grad: np.ndarray, backend: str = "auto"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One training step: descend the shadow weights, reprogram the
        pair with write-verify.  Returns the per-cell pulse counts
        ``(writes_plus, writes_minus)`` for endurance accounting."""
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        backend = "fast" if backend == "auto" else backend
        lr = self.params.learning_rate
        self.w = np.clip(
            self.w - lr * grad, -self.params.w_max, self.params.w_max
        )
        self.bias = self.bias - lr * bias_grad
        gp, gn = self.targets()
        writes_p = self._write_verify(self.pos, gp, backend)
        writes_n = self._write_verify(self.neg, gn, backend)
        return writes_p, writes_n

    def relax(self, elapsed: float) -> None:
        """Let both arrays drift for ``elapsed`` seconds."""
        self.pos.relax(elapsed)
        self.neg.relax(elapsed)

    @property
    def dead_cells(self) -> int:
        """Stuck cells across the pair."""
        return self.pos.fault_count() + self.neg.fault_count()


class InSituTrainer:
    """Epoch loop wiring :class:`InSituDense` to endurance and energy.

    RNG discipline: the seed fans out into four independent streams
    (data, weight init, write noise, endurance lifetimes+faults), so a
    given seed reproduces the full trajectory regardless of backend.
    """

    def __init__(
        self,
        params: Optional[TrainingParams] = None,
        *,
        backend: str = "auto",
        rng: RNGLike = 0,
    ) -> None:
        self.params = params or TrainingParams()
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        data_rng, init_rng, write_rng, wear_rng = spawn_rngs(rng, 4)
        p = self.params
        x, y = gaussian_blobs(
            n_samples=p.n_samples,
            n_features=p.n_features,
            n_classes=p.n_classes,
            rng=data_rng,
        )
        n_test = max(1, p.n_samples // 4)
        self.x_train, self.y_train = x[n_test:], y[n_test:]
        self.x_test, self.y_test = x[:n_test], y[:n_test]
        self.layer = InSituDense(p, rng=init_rng, write_rng=write_rng)
        model = EnduranceModel(
            characteristic_life=p.characteristic_life,
            shape=p.endurance_shape,
        )
        wear_pos, wear_neg = spawn_rngs(wear_rng, 2)
        self.endurance = (
            EnduranceSimulator(self.layer.pos, model, rng=wear_pos),
            EnduranceSimulator(self.layer.neg, model, rng=wear_neg),
        )

    @property
    def write_energy(self) -> float:
        """Programming energy charged so far (J), both arrays."""
        return sum(sim.costs.total.energy for sim in self.endurance)

    def accuracy(self) -> float:
        """Held-out accuracy through the analog forward pass."""
        pred = self.layer.predict(self.x_test)
        return float(np.mean(pred == self.y_test))

    def _epoch(self) -> Tuple[float, int]:
        """One pass over the training set; returns (mean loss, pulses)."""
        p = self.params
        n = self.x_train.shape[0]
        losses: List[float] = []
        pulses = 0
        onehot = np.eye(p.n_classes)
        for lo in range(0, n, p.batch_size):
            xb = self.x_train[lo : lo + p.batch_size]
            yb = self.y_train[lo : lo + p.batch_size]
            logits = self.layer.forward(xb)
            probs = _softmax(logits)
            losses.append(
                float(
                    -np.mean(
                        np.log(
                            np.maximum(probs[np.arange(len(yb)), yb], 1e-12)
                        )
                    )
                )
            )
            delta = (probs - onehot[yb]) / xb.shape[0]
            grad = outer_product_delta(xb, delta, backend=self.backend)
            writes_p, writes_n = self.layer.apply_update(
                grad, delta.sum(axis=0), backend=self.backend
            )
            # Endurance consumes the pulses (and charges their energy);
            # cells that cross their Weibull lifetime die *now*, so the
            # rest of the epoch trains against the faulted device.
            self.endurance[0].wear(writes_p)
            self.endurance[1].wear(writes_n)
            pulses += int(writes_p.sum() + writes_n.sum())
        return float(np.mean(losses)), pulses

    def run(self) -> List[Dict[str, float]]:
        """Train for ``epochs`` passes; returns one row per epoch:
        loss, held-out accuracy, cumulative dead cells / pulses / energy,
        with drift aging applied between epochs."""
        rows: List[Dict[str, float]] = []
        total_pulses = 0
        for epoch in range(self.params.epochs):
            loss, pulses = self._epoch()
            total_pulses += pulses
            self.layer.relax(self.params.aging_seconds)
            rows.append(
                {
                    "epoch": int(epoch),
                    "loss": loss,
                    "accuracy": self.accuracy(),
                    "dead_cells": int(self.layer.dead_cells),
                    "pulses": int(pulses),
                    "total_pulses": int(total_pulses),
                    "write_energy_j": self.write_energy,
                }
            )
        return rows


def train_insitu(
    params: Optional[TrainingParams] = None,
    *,
    backend: str = "auto",
    rng: RNGLike = 0,
) -> Dict[str, object]:
    """Run one in-situ training job; returns the summary row the sweep
    and the CLI/serve layers share (per-epoch history plus finals)."""
    trainer = InSituTrainer(params, backend=backend, rng=rng)
    history = trainer.run()
    last = history[-1]
    return {
        "epochs": len(history),
        "final_accuracy": last["accuracy"],
        "final_loss": last["loss"],
        "dead_cells": last["dead_cells"],
        "total_pulses": last["total_pulses"],
        "write_energy_j": last["write_energy_j"],
        "history": history,
    }


def _training_point(
    point: Tuple[float, float],
    trial: int,
    rng: np.random.Generator,
    epochs: int,
    n_features: int,
    n_classes: int,
    write_sigma: float,
    backend: str,
) -> Dict[str, object]:
    """One grid job: one (characteristic_life, drift_nu) training run."""
    life, nu = point
    params = TrainingParams(
        n_features=n_features,
        n_classes=n_classes,
        epochs=epochs,
        write_sigma=write_sigma,
        characteristic_life=life,
        drift_nu=nu,
    )
    result = train_insitu(params, backend=backend, rng=rng)
    row: Dict[str, object] = {
        "trial": int(trial),
        "characteristic_life": float(life),
        "drift_nu": float(nu),
        "feasible": True,
    }
    row.update(
        {k: v for k, v in result.items() if k != "history"}
    )
    for epoch_row in result["history"]:
        e = epoch_row["epoch"]
        row[f"accuracy_epoch{e}"] = epoch_row["accuracy"]
        row[f"dead_cells_epoch{e}"] = epoch_row["dead_cells"]
    return row


def explore_training(
    lives: Sequence[float] = (8.0, 12.0, 1e6),
    drift_nus: Sequence[float] = (0.0, 0.01),
    *,
    epochs: int = 5,
    n_features: int = 16,
    n_classes: int = 4,
    write_sigma: float = 0.05,
    backend: str = "auto",
    trials: int = 1,
    seed: RNGLike = 0,
    workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Sweep endurance life x drift over in-situ training runs — the
    accuracy-vs-epochs-under-aging experiment.  One row per (point,
    trial); deterministic and bit-identical at any ``workers`` count."""
    points = [(float(l), float(nu)) for l in lives for nu in drift_nus]
    if not points:
        return []
    nested = run_grid(
        _training_point,
        points,
        trials=trials,
        seed=seed,
        workers=workers,
        task_args=(
            int(epochs),
            int(n_features),
            int(n_classes),
            float(write_sigma),
            str(backend),
        ),
    )
    return [row for per_point in nested for row in per_point]
