"""Workload-diversity tier: model classes beyond MLP/CNN inference.

Two workloads open this tier (ROADMAP item 5, the paper's Section IV
workload argument):

* :mod:`repro.workloads.attention` — a single-head transformer block
  traced as a fork-join DAG through the pipeline IR (crossbar QK^T and
  AV matmuls, digital softmax);
* :mod:`repro.workloads.training` — in-situ training with outer-product
  updates, write-verify programming, endurance consumption and drift.

Both are deterministic sweep-engine consumers surfaced as ``cimflow
attention`` / ``cimflow train`` and as serve request kinds.
"""

from repro.workloads.attention import (
    AttentionParams,
    attention_graph,
    explore_attention,
    run_attention,
)
from repro.workloads.training import (
    InSituDense,
    InSituTrainer,
    TrainingParams,
    explore_training,
    outer_product_delta,
    train_insitu,
)

__all__ = [
    "AttentionParams",
    "attention_graph",
    "run_attention",
    "explore_attention",
    "TrainingParams",
    "outer_product_delta",
    "InSituDense",
    "InSituTrainer",
    "train_insitu",
    "explore_training",
]
