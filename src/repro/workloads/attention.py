"""Single-head attention traced through the DAG pipeline IR.

The paper's workload-diversity argument (and ROADMAP item 5) needs more
than MLP/CNN chains: attention is the first genuinely *fork-join* model —
the input fans out into Q/K/V projections, QK^T joins two branches, and
softmax runs in the digital periphery.  This module traces that block
into the :mod:`repro.pipeline.ir` DAG so the existing allocator,
scheduler and interconnect model execute it unchanged:

* ``wq``/``wk``/``wv`` — per-token dense projections (the fork; each
  branch edge is charged separately by the interconnect);
* ``scores`` — a ``matmul`` stage computing ``softmax(Q K^T / sqrt(d))``
  with K programmed into the crossbar per sample (CiMLoop's point: the
  score distribution is data, so it must flow through the cost model);
* ``attend`` — a ``matmul`` stage computing ``scores @ V`` (the join);
* ``wo`` — the per-token output projection (logit head over mean-pooled
  tokens happens digitally in the consumer).

:func:`explore_attention` is the deterministic sweep-engine consumer
behind ``cimflow attention`` and the serve layer's ``"attention"`` kind:
rows are bit-identical for a given seed at any worker count, and every
point checks that the pipelined schedule reproduces the layer-sequential
outputs bit-for-bit (the DAG generalization's acceptance criterion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.datasets import token_sequences
from repro.pipeline.allocate import (
    AllocationError,
    TileInventory,
    allocate,
)
from repro.pipeline.ir import GRAPH_INPUT, GraphBuilder, LayerGraph
from repro.pipeline.schedule import PipelineScheduler, ScheduleParams
from repro.utils import telemetry
from repro.utils.parallel import run_grid
from repro.utils.rng import RNGLike, ensure_rng
from repro.utils.validation import check_positive

__all__ = [
    "AttentionParams",
    "attention_graph",
    "run_attention",
    "explore_attention",
]


@dataclass
class AttentionParams:
    """Geometry of the single-head block.

    ``seq`` tokens of width ``d_model`` enter; Q/K/V project each token
    to ``d_head``; the output projection returns to ``d_model``.
    """

    seq: int = 8
    d_model: int = 16
    d_head: int = 8

    def __post_init__(self) -> None:
        check_positive("seq", self.seq)
        check_positive("d_model", self.d_model)
        check_positive("d_head", self.d_head)


def attention_graph(
    params: Optional[AttentionParams] = None,
    calibration: Optional[np.ndarray] = None,
    *,
    model_seed: int = 2024,
) -> LayerGraph:
    """Trace a single-head attention block into the DAG IR.

    Weights depend only on ``model_seed``.  ``calibration`` — a
    ``(n, seq, d_model)`` or ``(n, seq * d_model)`` token batch — sets
    the per-stage ``input_scale`` from reference activations, exactly as
    :func:`~repro.pipeline.ir.trace_mlp` calibrates its layers; without
    it a deterministic :func:`token_sequences` batch is used.
    """
    params = params or AttentionParams()
    seq, d_model, d_head = params.seq, params.d_model, params.d_head
    rng = np.random.default_rng(model_seed)
    wq = rng.normal(0.0, 1.0 / np.sqrt(d_model), size=(d_model, d_head))
    wk = rng.normal(0.0, 1.0 / np.sqrt(d_model), size=(d_model, d_head))
    wv = rng.normal(0.0, 1.0 / np.sqrt(d_model), size=(d_model, d_head))
    wo = rng.normal(0.0, 1.0 / np.sqrt(d_head), size=(d_head, d_model))

    if calibration is None:
        calibration, _ = token_sequences(
            n_samples=32, seq=seq, d_model=d_model, rng=model_seed + 1
        )
    calib = np.asarray(calibration, dtype=float).reshape(-1, seq, d_model)

    # Reference activations for input-scale calibration.
    q = np.maximum(calib @ wq, 0.0)            # wq has relu: Q >= 0
    scores_ref = q @ (calib @ wk).transpose(0, 2, 1) / np.sqrt(d_head)
    shifted = scores_ref - scores_ref.max(axis=-1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=-1, keepdims=True)
    att = np.maximum(probs @ (calib @ wv), 0.0)

    x_scale = float(max(calib.max(), 1e-12))
    q_scale = float(max(q.max(), 1e-12))
    att_scale = float(max(att.max(), 1e-12))

    return (
        GraphBuilder()
        .dense(wq, tokens=seq, name="wq", inputs=(GRAPH_INPUT,),
               activation="relu", input_scale=x_scale)
        .dense(wk, tokens=seq, name="wk", inputs=(GRAPH_INPUT,),
               activation="none", input_scale=x_scale)
        .dense(wv, tokens=seq, name="wv", inputs=(GRAPH_INPUT,),
               activation="none", input_scale=x_scale)
        .matmul(d_head, seq, tokens=seq, inputs=("wq", "wk"),
                transpose_right=True, scale=1.0 / np.sqrt(d_head),
                activation="softmax", input_scale=q_scale, name="scores")
        .matmul(seq, d_head, tokens=seq, inputs=("scores", "wv"),
                activation="relu", input_scale=1.0, name="attend")
        .dense(wo, tokens=seq, name="wo", inputs=("attend",),
               activation="none", input_scale=att_scale)
        .build()
    )


def run_attention(
    params: Optional[AttentionParams] = None,
    *,
    batch: int = 32,
    micro_batch: int = 8,
    inventory: Optional[TileInventory] = None,
    duplication="none",
    model_seed: int = 2024,
    noisy: bool = False,
    rng: RNGLike = 0,
) -> Dict[str, object]:
    """Compile and run one attention batch under both schedule modes.

    Returns the row ``explore_attention`` sweeps produce for one point:
    makespans, speedup, energy, transfer telemetry, the pipelined-vs-
    sequential bit-identity flag and the max deviation from the float
    reference forward pass.
    """
    params = params or AttentionParams()
    graph = attention_graph(params, model_seed=model_seed)
    x, _ = token_sequences(
        n_samples=batch,
        seq=params.seq,
        d_model=params.d_model,
        rng=model_seed + 1,
    )
    flat = x.reshape(batch, -1)
    alloc = allocate(
        graph,
        inventory or TileInventory(n_tiles=16),
        duplication=duplication,
        rng=ensure_rng(rng),
    )
    sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=micro_batch))
    with telemetry.scoped() as scope:
        seq_run = sched.run(flat, mode="sequential", noisy=noisy)
        pipe_run = sched.run(flat, mode="pipelined", noisy=noisy)
        counters = scope.snapshot(include_timers=False)["counters"]
    reference = graph.reference_forward(flat)
    n_edges = len(graph.edges()) + len(graph.entry_names) + 1
    return {
        "seq": params.seq,
        "d_model": params.d_model,
        "d_head": params.d_head,
        "batch": int(batch),
        "micro_batch": int(micro_batch),
        "tiles_used": alloc.tiles_used,
        "makespan_sequential_s": seq_run.makespan,
        "makespan_pipelined_s": pipe_run.makespan,
        "speedup": (
            seq_run.makespan / pipe_run.makespan
            if pipe_run.makespan > 0
            else 0.0
        ),
        "throughput": pipe_run.throughput,
        "energy_per_sample": pipe_run.energy_per_sample,
        "transfer_bytes": pipe_run.transfer_bytes,
        "graph_edges": n_edges,
        "transfers": float(counters.get("pipeline.transfers", 0.0)),
        "bit_identical": bool(
            np.array_equal(pipe_run.outputs, seq_run.outputs)
        ),
        "max_ref_error": float(
            np.max(np.abs(pipe_run.outputs - reference))
        ),
    }


def _attention_point(
    point: Tuple[int, int, int],
    trial: int,
    rng: np.random.Generator,
    d_model: int,
    batch: int,
    n_tiles: int,
    model_seed: int,
    noisy: bool,
) -> Dict[str, object]:
    """One grid job: one (seq, d_head, micro_batch) attention point."""
    seq, d_head, micro_batch = point
    row: Dict[str, object] = {"trial": int(trial)}
    try:
        result = run_attention(
            AttentionParams(seq=seq, d_model=d_model, d_head=d_head),
            batch=batch,
            micro_batch=micro_batch,
            inventory=TileInventory(n_tiles=n_tiles),
            model_seed=model_seed,
            noisy=noisy,
            rng=rng,
        )
    except AllocationError as exc:
        row.update(
            {
                "seq": int(seq),
                "d_head": int(d_head),
                "micro_batch": int(micro_batch),
                "feasible": False,
                "reason": str(exc),
            }
        )
        return row
    row.update(result)
    row["feasible"] = True
    return row


def explore_attention(
    seqs: Sequence[int] = (4, 8),
    d_heads: Sequence[int] = (4, 8),
    micro_batches: Sequence[int] = (4,),
    *,
    d_model: int = 16,
    batch: int = 16,
    n_tiles: int = 16,
    model_seed: int = 2024,
    noisy: bool = False,
    trials: int = 1,
    seed: RNGLike = 0,
    workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Sweep sequence length x head width x micro-batch; one row per
    (point, trial).

    Runs on the deterministic engine: rows arrive in point-major order
    and are bit-identical for a given ``seed`` at any ``workers``
    setting.  Infeasible points (block does not fit ``n_tiles``) come
    back with ``feasible=False`` instead of raising.
    """
    points = [
        (int(s), int(d), int(m))
        for s in seqs
        for d in d_heads
        for m in micro_batches
    ]
    if not points:
        return []
    nested = run_grid(
        _attention_point,
        points,
        trials=trials,
        seed=seed,
        workers=workers,
        task_args=(
            int(d_model),
            int(batch),
            int(n_tiles),
            int(model_seed),
            bool(noisy),
        ),
    )
    return [row for per_point in nested for row in per_point]
