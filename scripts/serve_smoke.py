#!/usr/bin/env python
"""End-to-end smoke test for the serving layer, run by CI.

Starts a real ``cimflow serve`` process on an ephemeral port, submits an
inference request and a yield sweep over the socket, then re-submits the
identical sweep and asserts the second response is a results-cache hit
that is bit-identical to the cold one — the serving layer's core
contract, exercised through the same process boundary users cross.

Exits non-zero (with a message on stderr) on any violation.
"""

import json
import os
import re
import subprocess
import sys

sys.path.insert(0, "src")

from repro.serve import ServeClient  # noqa: E402

# Small enough to train in seconds on a CI runner, big enough to exercise
# the tiled LU path (wire_resistance > 0) the batcher relies on.
MODEL = {
    "n_samples": 120,
    "n_features": 16,
    "n_classes": 4,
    "hidden": [8],
    "epochs": 4,
    "wire_resistance": 1.0,
}
SWEEP = {"yields": [1.0, 0.8], "trials": 1, "epochs": 4, "n_samples": 120}

READY_RE = re.compile(r"listening on ([\d.]+):(\d+)")


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        ready = proc.stdout.readline()
        match = READY_RE.search(ready)
        if match is None:
            fail(f"server did not report a listening address: {ready!r}")
        host, port = match.group(1), int(match.group(2))
        print(f"serve_smoke: server up on {host}:{port}")

        with ServeClient(host, port, timeout=600) as client:
            infer = client.request(
                "infer", {"model": MODEL, "x": [[0.1] * MODEL["n_features"]]}
            )
            if not infer.get("ok"):
                fail(f"inference failed: {infer.get('error')}")
            if len(infer["result"]["prediction"]) != 1:
                fail(f"unexpected inference result: {infer['result']}")
            print(
                "serve_smoke: infer ok, prediction="
                f"{infer['result']['prediction']}"
            )

            cold = client.request("sweep", SWEEP)
            if not cold.get("ok"):
                fail(f"cold sweep failed: {cold.get('error')}")
            if cold["cache"] != "miss":
                fail(f"cold sweep should be a cache miss, got {cold['cache']}")
            print(f"serve_smoke: cold sweep ok ({len(cold['result'])} rows)")

            warm = client.request("sweep", SWEEP)
            if not warm.get("ok"):
                fail(f"warm sweep failed: {warm.get('error')}")
            if warm["cache"] != "hit":
                fail(
                    "identical re-submitted sweep must be a results-cache "
                    f"hit, got {warm['cache']}"
                )
            # Bit-identical means byte-identical canonical JSON: result
            # AND the conservation-validated report.
            for field in ("result", "report"):
                if json.dumps(cold[field], sort_keys=True) != json.dumps(
                    warm[field], sort_keys=True
                ):
                    fail(f"warm sweep {field} differs from cold response")
            print("serve_smoke: warm sweep is a bit-identical cache hit")

            stats = client.request("stats")
            cache = stats["result"]["results_cache"]
            if cache["request_hits"] < 1:
                fail(f"stats report no results-cache hits: {cache}")
            print(f"serve_smoke: PASS (results cache: {cache})")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
