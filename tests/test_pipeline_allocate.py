"""Tests for the tile allocator (repro.pipeline.allocate)."""

import numpy as np
import pytest

from repro.pipeline import (
    AllocationError,
    GraphBuilder,
    TileInventory,
    allocate,
    tiles_required,
)
from repro.pipeline.explore import reference_conv_graph, reference_graph


def _mlp_graph(rng, sizes=(32, 32, 32, 10)):
    builder = GraphBuilder()
    for k, (fi, fo) in enumerate(zip(sizes[:-1], sizes[1:])):
        builder.dense(
            rng.uniform(-1, 1, (fi, fo)),
            activation="none" if k == len(sizes) - 2 else "relu",
        )
    return builder.build()


class TestTilesRequired:
    def test_exact_fit_is_one_tile(self, rng):
        g = _mlp_graph(rng, (64, 32, 10))
        inv = TileInventory(n_tiles=4, tile_rows=64, tile_cols=32)
        assert tiles_required(g.nodes[0], inv) == 1

    def test_non_divisible_rounds_up(self, rng):
        g = _mlp_graph(rng, (100, 50, 10))
        inv = TileInventory(n_tiles=16, tile_rows=64, tile_cols=32)
        assert tiles_required(g.nodes[0], inv) == 4  # ceil(100/64)*ceil(50/32)


class TestAllocate:
    def test_does_not_fit_raises(self, rng):
        g = _mlp_graph(rng)
        with pytest.raises(AllocationError, match="tiles"):
            allocate(g, TileInventory(n_tiles=2))

    def test_one_replica_per_stage_by_default(self, rng):
        g = _mlp_graph(rng)
        alloc = allocate(g, TileInventory(n_tiles=8), rng=0)
        assert alloc.replica_counts() == [1, 1, 1]
        assert alloc.tiles_used == 3
        assert alloc.tiles_free == 5

    def test_auto_duplication_fills_inventory(self, rng):
        g = _mlp_graph(rng)
        alloc = allocate(g, TileInventory(n_tiles=8), duplication="auto", rng=0)
        assert alloc.tiles_used == 8
        assert all(c >= 2 for c in alloc.replica_counts())

    def test_auto_duplication_targets_bottleneck(self):
        """The conv stage (36 patches/sample) must soak up the spare tiles
        before the balanced dense stages get a second replica."""
        g = reference_conv_graph()
        alloc = allocate(g, TileInventory(n_tiles=16), duplication="auto", rng=0)
        counts = alloc.replica_counts()
        assert counts[0] > counts[1] and counts[0] > counts[2]

    def test_explicit_duplication_respected(self, rng):
        g = _mlp_graph(rng)
        alloc = allocate(
            g, TileInventory(n_tiles=8), duplication=[2, 1, 1], rng=0
        )
        assert alloc.replica_counts() == [2, 1, 1]

    def test_explicit_duplication_overflow_raises(self, rng):
        g = _mlp_graph(rng)
        with pytest.raises(AllocationError, match="duplication"):
            allocate(g, TileInventory(n_tiles=4), duplication=[2, 2, 2])

    def test_bad_duplication_string_raises(self, rng):
        g = _mlp_graph(rng)
        with pytest.raises(ValueError, match="duplication"):
            allocate(g, TileInventory(n_tiles=8), duplication="greedy")

    def test_same_seed_programs_identical_replicas(self, rng):
        g = _mlp_graph(rng)
        a = allocate(g, TileInventory(n_tiles=8), duplication="auto", rng=42)
        b = allocate(g, TileInventory(n_tiles=8), duplication="auto", rng=42)
        x = np.random.default_rng(1).uniform(0, 1, (4, 32))
        for sa, sb in zip(a.stages, b.stages):
            for m in range(sa.n_replicas):
                assert np.array_equal(
                    sa.apply(x, m, noisy=True), sb.apply(x, m, noisy=True)
                )

    def test_replica_for_is_static_round_robin(self, rng):
        g = _mlp_graph(rng)
        alloc = allocate(
            g, TileInventory(n_tiles=8), duplication=[3, 1, 1], rng=0
        )
        stage = alloc.stages[0]
        assert [stage.replica_for(m) for m in range(6)] == [0, 1, 2, 0, 1, 2]


class TestStageApply:
    def test_dense_stage_matches_reference_at_high_adc(self, rng):
        g = _mlp_graph(rng, (32, 16, 8))
        inv = TileInventory(n_tiles=4, adc_bits=14)
        alloc = allocate(g, inv, rng=0)
        h = rng.uniform(0, 1, (6, 32))
        out = alloc.stages[0].apply(h, 0, noisy=False)
        ref = g.nodes[0].reference_forward(h)
        assert np.corrcoef(out.ravel(), ref.ravel())[0, 1] > 0.999

    def test_conv_stage_shape(self):
        g = reference_conv_graph()
        alloc = allocate(g, TileInventory(n_tiles=8), rng=0)
        imgs = np.random.default_rng(2).uniform(0, 1, (3, 8, 8))
        out = alloc.stages[0].apply(imgs, 0, noisy=False)
        assert out.shape == (3, g.nodes[0].out_features)


class TestAccounting:
    def test_total_costs_cover_programming(self, rng):
        g = _mlp_graph(rng)
        alloc = allocate(g, TileInventory(n_tiles=8), duplication="auto", rng=0)
        costs = alloc.total_costs()
        assert costs.total.energy > 0
        assert "programming" in costs.by_category

    def test_area_scales_with_replication(self, rng):
        g = _mlp_graph(rng)
        single = allocate(g, TileInventory(n_tiles=8), rng=0)
        doubled = allocate(
            g, TileInventory(n_tiles=8), duplication=[2, 2, 2], rng=0
        )
        a1 = sum(single.area_breakdown().values())
        a2 = sum(doubled.area_breakdown().values())
        assert a2 == pytest.approx(2 * a1)

    def test_summary_rows(self, rng):
        g = _mlp_graph(rng)
        alloc = allocate(g, TileInventory(n_tiles=8), rng=0)
        rows = alloc.summary()
        assert [r["stage"] for r in rows] == [n.name for n in g]
        assert all(r["tiles"] >= 1 for r in rows)
