"""Tests for bit-serial arithmetic in the CIM-P periphery."""

import numpy as np
import pytest

from repro.core.bitserial import (
    ScoutingAdder,
    cim_p_vs_cim_a_cost,
)
from repro.core.cim_core import CIMCore, CIMCoreParams


@pytest.fixture
def adder():
    return ScoutingAdder(rng=0)


class TestAddition:
    def test_exhaustive_small_words(self):
        """All 4-bit operand pairs, spread across the bitlines."""
        adder = ScoutingAdder(rng=1)
        cols = adder.core.array.cols
        pairs = [(a, b) for a in range(16) for b in range(16)]
        for start in range(0, len(pairs), cols):
            chunk = pairs[start : start + cols]
            a = np.array([p[0] for p in chunk] + [0] * (cols - len(chunk)))
            b = np.array([p[1] for p in chunk] + [0] * (cols - len(chunk)))
            result, _ = adder.add_integers(a, b, bits=4)
            assert np.array_equal(result, a + b)

    def test_random_8bit_vectors(self, adder, rng):
        cols = adder.core.array.cols
        a = rng.integers(0, 256, cols)
        b = rng.integers(0, 256, cols)
        result, _ = adder.add_integers(a, b, bits=8)
        assert np.array_equal(result, a + b)

    def test_carry_out_plane(self, adder):
        cols = adder.core.array.cols
        a = np.full(cols, 255)
        b = np.full(cols, 1)
        result, _ = adder.add_integers(a, b, bits=8)
        assert np.all(result == 256)

    def test_operand_validation(self, adder):
        cols = adder.core.array.cols
        with pytest.raises(ValueError, match="unsigned"):
            adder.add_integers(
                np.full(cols, 300), np.zeros(cols, dtype=int), bits=8
            )
        with pytest.raises(ValueError, match="shape"):
            adder.add_integers(np.zeros(3, dtype=int), np.zeros(3, dtype=int))


class TestCostStory:
    def test_ops_linear_in_word_width(self, rng):
        def ops_for(bits):
            adder = ScoutingAdder(rng=2)
            cols = adder.core.array.cols
            a = rng.integers(0, 1 << bits, cols)
            b = rng.integers(0, 1 << bits, cols)
            _, stats = adder.add_integers(a, b, bits=bits)
            return stats.total_array_operations

        assert ops_for(8) == 2 * ops_for(4)

    def test_high_cost_vs_cim_a(self):
        """Table I's 'High cost' rating, quantified: the bit-serial add
        costs tens of array operations where CIM-A spends one."""
        report = cim_p_vs_cim_a_cost(word_bits=8)
        assert report["cim_a_array_ops"] == 1
        assert report["cim_p_array_ops"] > 30
        assert report["scouting_ops"] == 5 * 8   # 5 logic ops per bit
        assert report["row_writes"] == 6 * 8     # 6 write-backs per bit

    def test_needs_four_rows(self):
        with pytest.raises(ValueError, match="4 rows"):
            ScoutingAdder(CIMCore(CIMCoreParams(rows=2, logical_cols=4), rng=0))
