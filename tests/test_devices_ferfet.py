"""Tests for the FeRFET compact model (Fig 10)."""

import numpy as np
import pytest

from repro.devices.ferfet import FeRFET, FeRFETParams, FeRFETState
from repro.devices.rfet import Polarity


class TestStateMachine:
    def test_four_states_exist(self):
        assert len(FeRFETState) == 4

    def test_state_components(self):
        assert FeRFETState.N_LRS.polarity is Polarity.N_TYPE
        assert FeRFETState.N_LRS.low_resistive
        assert FeRFETState.P_HRS.polarity is Polarity.P_TYPE
        assert not FeRFETState.P_HRS.low_resistive

    def test_program_state_round_trip(self):
        dev = FeRFET()
        for state in FeRFETState:
            dev.program_state(state)
            assert dev.state is state

    def test_subcoercive_voltages_do_not_program(self):
        """Normal operation must not disturb either ferroelectric layer."""
        dev = FeRFET(state=FeRFETState.P_HRS)
        v_op = dev.params.operating_voltage
        assert not dev.program_polarity(v_op)
        assert not dev.program_threshold_state(v_op)
        assert dev.state is FeRFETState.P_HRS

    def test_coercive_programs_polarity(self):
        dev = FeRFET(state=FeRFETState.P_HRS)
        assert dev.program_polarity(dev.params.coercive_voltage)
        assert dev.polarity is Polarity.N_TYPE

    def test_coercive_programs_threshold(self):
        dev = FeRFET(state=FeRFETState.N_HRS)
        assert dev.program_threshold_state(dev.params.coercive_voltage)
        assert dev.low_resistive

    def test_program_voltage_ratio_band(self):
        """Programming needs 2-3x the operating voltage (Section V-A)."""
        p = FeRFETParams()
        assert 2.0 <= p.program_voltage_ratio <= 3.0

    def test_ratio_outside_band_rejected(self):
        with pytest.raises(ValueError, match="2-3x"):
            FeRFETParams(coercive_voltage=10.0, operating_voltage=0.8)


class TestFourStateCurves:
    """The Fig 10(b) reproduction: four distinguishable I-V branches."""

    def test_curves_cover_all_states(self):
        curves = FeRFET.four_state_curves()
        assert set(curves) == set(FeRFETState)

    def test_states_distinguishable_at_read_voltage(self):
        params = FeRFETParams()
        grid = np.linspace(-1.2, 1.2, 121)
        curves = FeRFET.four_state_curves(params, -1.2, 1.2, 121)
        assert FeRFET.states_distinguishable(
            curves, grid, params.operating_voltage
        )

    def test_n_type_conducts_positive_p_type_negative(self):
        params = FeRFETParams()
        v = params.operating_voltage
        n = FeRFET(params, FeRFETState.N_LRS)
        p = FeRFET(params, FeRFETState.P_LRS)
        assert n.drain_current(v) > 100 * n.drain_current(-v)
        assert p.drain_current(-v) > 100 * p.drain_current(v)

    def test_lrs_hrs_ratio(self):
        params = FeRFETParams()
        v = params.operating_voltage
        lrs = FeRFET(params, FeRFETState.N_LRS).drain_current(v)
        hrs = FeRFET(params, FeRFETState.N_HRS).drain_current(v)
        assert lrs > 5 * hrs

    def test_off_current_floor(self):
        params = FeRFETParams()
        dev = FeRFET(params, FeRFETState.N_HRS)
        assert dev.drain_current(-2 * params.operating_voltage) >= params.off_current

    def test_iv_curve_vectorized(self):
        dev = FeRFET()
        grid = np.linspace(-1, 1, 11)
        curve = dev.iv_curve(grid)
        assert curve.shape == (11,)
        assert np.all(curve > 0)


class TestThresholds:
    def test_hrs_threshold_above_lrs(self):
        with pytest.raises(ValueError, match="vth_n_hrs"):
            FeRFETParams(vth_n_lrs=0.9, vth_n_hrs=0.3)

    def test_depletion_mode_lrs_allowed(self):
        """Negative LRS threshold (always-on when storing 1) is what the
        Fig 12(a) OR-type cell needs."""
        p = FeRFETParams(vth_n_lrs=-0.3, vth_n_hrs=0.5)
        dev = FeRFET(p, FeRFETState.N_LRS)
        assert dev.is_conducting(0.0)

    def test_threshold_sign_follows_polarity(self):
        p = FeRFETParams()
        n = FeRFET(p, FeRFETState.N_LRS)
        pp = FeRFET(p, FeRFETState.P_LRS)
        assert n.threshold_voltage > 0
        assert pp.threshold_voltage < 0
