"""Tests for the read/write voltage-domain overhead model."""

import pytest

from repro.periphery.voltage_regulation import (
    ChargePump,
    VoltageDomain,
    reram_voltage_domains,
    voltage_domain_overhead,
)


class TestChargePump:
    def test_no_stages_within_supply(self):
        pump = ChargePump(v_supply=0.9)
        assert pump.stages_for(0.5) == 0
        assert pump.efficiency(0.5) == 1.0

    def test_stage_count_grows_with_boost(self):
        pump = ChargePump(v_supply=0.9)
        assert pump.stages_for(2.0) < pump.stages_for(3.5)

    def test_efficiency_falls_with_boost(self):
        pump = ChargePump(v_supply=0.9, stage_efficiency=0.85)
        assert pump.efficiency(3.5) < pump.efficiency(2.0) < 1.0

    def test_input_power_exceeds_load(self):
        pump = ChargePump()
        domain = VoltageDomain("write", 2.0, 0.1, 2e-3)
        load = 2.0 * 2e-3 * 0.1
        assert pump.input_power(domain) > load

    def test_area_grows_with_stages(self):
        pump = ChargePump()
        assert pump.area(3.5) > pump.area(2.0) > 0
        assert pump.area(0.5) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChargePump(stage_efficiency=0)
        with pytest.raises(ValueError):
            VoltageDomain("x", 1.0, 1.5, 1e-3)


class TestDomainOverhead:
    def test_reram_domain_set(self):
        domains = reram_voltage_domains()
        names = [d.name for d in domains]
        assert names == ["read", "write", "forming"]
        voltages = [d.voltage for d in domains]
        assert voltages == sorted(voltages)  # read < write < forming

    def test_overhead_report(self):
        report = voltage_domain_overhead(reram_voltage_domains())
        assert report["supply_power"] > report["load_power"]
        assert 0 < report["loss_fraction"] < 1
        assert report["boosted_domains"] == 2  # write + forming
        assert report["regulation_area_mm2"] > 0

    def test_single_domain_cmos_pays_nothing(self):
        """A logic-voltage-only design (the CMOS baseline the conclusion
        contrasts with) has zero conversion loss and no extra drivers."""
        domains = [VoltageDomain("logic", 0.8, 1.0, 1e-3)]
        report = voltage_domain_overhead(domains)
        assert report["conversion_loss"] == pytest.approx(0.0)
        assert report["boosted_domains"] == 0
        assert report["regulation_area_mm2"] == 0.0

    def test_higher_write_voltage_costs_more(self):
        low = voltage_domain_overhead(
            reram_voltage_domains(write_voltage=1.5)
        )
        high = voltage_domain_overhead(
            reram_voltage_domains(write_voltage=3.0)
        )
        assert high["loss_fraction"] >= low["loss_fraction"]
        assert high["supply_power"] > low["supply_power"]
