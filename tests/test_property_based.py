"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.crossbar.mapping import DifferentialPairMapping, OffsetColumnMapping
from repro.devices.memristor import LinearIonDriftMemristor
from repro.devices.reram import ConductanceLevels
from repro.eda.aig import aig_from_truth_table
from repro.eda.boolean import TruthTable
from repro.eda.esop import esop_from_truth_table, fprm_from_truth_table
from repro.eda.imply_mapping import map_aig_to_imply
from repro.eda.magic_mapping import map_netlist_to_magic_crossbar
from repro.eda.majority_mapping import map_mig_to_majority
from repro.eda.mig import mig_from_truth_table
from repro.eda.netlist import nor_netlist_from_aig
from repro.periphery.adc import ADC, ADCConfig
from repro.testing.ecc import HammingSecDed
from repro.testing.march import (
    FaultyBitMemory,
    MarchTestRunner,
    MemoryFault,
    MemoryFaultKind,
    march_c_star,
)


def truth_tables(max_vars=4):
    """Strategy producing random truth tables with 1..max_vars inputs."""
    return st.integers(1, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable,
            st.just(n),
            st.integers(0, (1 << (1 << n)) - 1),
        )
    )


def truth_table_groups(count, max_vars=3):
    """Strategy producing ``count`` tables that share one variable count
    (avoids assume-based filtering in multi-operand properties)."""
    return st.integers(1, max_vars).flatmap(
        lambda n: st.tuples(
            *[
                st.builds(
                    TruthTable,
                    st.just(n),
                    st.integers(0, (1 << (1 << n)) - 1),
                )
                for _ in range(count)
            ]
        )
    )


class TestBooleanProperties:
    @given(truth_tables())
    def test_double_negation(self, tt):
        assert ~(~tt) == tt

    @given(truth_table_groups(2))
    def test_de_morgan(self, tables):
        a, b = tables
        assert ~(a & b) == (~a | ~b)

    @given(truth_table_groups(3))
    def test_majority_self_dual(self, tables):
        a, b, c = tables
        lhs = ~TruthTable.majority(a, b, c)
        rhs = TruthTable.majority(~a, ~b, ~c)
        assert lhs == rhs

    @given(truth_tables())
    def test_shannon_expansion(self, tt):
        for var in tt.support():
            x = TruthTable.variable(tt.n_vars, var)
            recombined = (x & tt.cofactor(var, 1)) | (~x & tt.cofactor(var, 0))
            assert recombined == tt

    @given(truth_tables())
    def test_count_ones_complement(self, tt):
        assert tt.count_ones() + (~tt).count_ones() == 1 << tt.n_vars


class TestSynthesisProperties:
    @given(truth_tables())
    @settings(max_examples=40)
    def test_aig_synthesis_exact(self, tt):
        aig, out = aig_from_truth_table(tt)
        aig.add_output(out)
        assert aig.to_truth_tables()[0] == tt

    @given(truth_tables())
    @settings(max_examples=30)
    def test_mig_synthesis_and_rewrite_exact(self, tt):
        mig = mig_from_truth_table(tt)
        assert mig.to_truth_tables()[0] == tt
        assert mig.depth_optimize().to_truth_tables()[0] == tt

    @given(truth_tables())
    @settings(max_examples=30)
    def test_esop_round_trip(self, tt):
        assert esop_from_truth_table(tt).to_truth_table() == tt

    @given(st.integers(0, 255), st.integers(0, 7))
    @settings(max_examples=30)
    def test_fprm_any_polarity(self, bits, polarity):
        tt = TruthTable(3, bits)
        assert fprm_from_truth_table(tt, polarity).to_truth_table() == tt


class TestMappingProperties:
    @given(truth_tables(3))
    @settings(max_examples=15, deadline=None)
    def test_all_three_mappings_equivalent(self, tt):
        """Every technology mapping computes the same function."""
        aig, out = aig_from_truth_table(tt)
        aig.add_output(out)
        aig = aig.cleanup()
        imply_prog = map_aig_to_imply(aig)
        mig = mig_from_truth_table(tt)
        maj = map_mig_to_majority(mig)
        magic = map_netlist_to_magic_crossbar(nor_netlist_from_aig(aig))
        for m in range(1 << tt.n_vars):
            inputs = [(m >> i) & 1 for i in range(tt.n_vars)]
            expected = [tt.evaluate(inputs)]
            assert imply_prog.execute(inputs) == expected
            assert maj.execute(inputs) == expected
            assert magic.execute(inputs) == expected

    @given(truth_tables(4))
    @settings(max_examples=15, deadline=None)
    def test_majority_delay_bound(self, tt):
        """Mapped delay never beats the proven optimum of levels + 1."""
        mig = mig_from_truth_table(tt)
        mapping = map_mig_to_majority(mig)
        assert mapping.delay == mig.levels() + 1


class TestCrossbarMappingProperties:
    @given(
        st.integers(2, 10),
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30)
    def test_differential_decode_inverts_map(self, rows, cols, seed):
        gen = np.random.default_rng(seed)
        w = gen.uniform(-1, 1, (rows, cols))
        x = gen.uniform(0, 1, rows)
        mapping = DifferentialPairMapping()
        v = x * 0.2
        decoded = mapping.decode(v @ mapping.map(w), v, v_scale=0.2)
        assert np.allclose(decoded, x @ w, atol=1e-9)

    @given(
        st.integers(2, 10),
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30)
    def test_offset_decode_inverts_map(self, rows, cols, seed):
        gen = np.random.default_rng(seed)
        w = gen.uniform(-1, 1, (rows, cols))
        x = gen.uniform(0, 1, rows)
        mapping = OffsetColumnMapping()
        v = x * 0.2
        decoded = mapping.decode(v @ mapping.map(w), v, v_scale=0.2)
        assert np.allclose(decoded, x @ w, atol=1e-9)


class TestDeviceProperties:
    @given(st.floats(0.0, 1.0))
    def test_memristor_resistance_bounds(self, x0):
        dev = LinearIonDriftMemristor(x0=x0)
        assert dev.params.r_on <= dev.resistance <= dev.params.r_off

    @given(st.floats(-2.0, 2.0), st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_memristor_state_invariant_under_any_drive(self, voltage, x0):
        dev = LinearIonDriftMemristor(x0=x0)
        for _ in range(50):
            dev.step(voltage, dt=1e-5)
        assert 0.0 <= dev.state <= 1.0

    @given(st.integers(2, 16), st.floats(min_value=1e-6, max_value=9e-5))
    def test_quantize_returns_nearest_level(self, n_levels, g):
        levels = ConductanceLevels(g_min=1e-6, g_max=1e-4, n_levels=n_levels)
        level = levels.quantize(g)
        distances = np.abs(levels.targets() - g)
        assert distances[level] == distances.min()


class TestAdcProperties:
    @given(st.integers(2, 12), st.floats(0.0, 1.0))
    def test_reconstruction_within_half_lsb(self, bits, value):
        adc = ADC(ADCConfig(bits=bits))
        reconstructed = adc.reconstruct(adc.quantize(value))
        assert abs(reconstructed - value) <= adc.lsb / 2 + 1e-12

    @given(st.integers(2, 10), st.floats(0.0, 1.0))
    def test_sar_trace_consistent(self, bits, value):
        adc = ADC(ADCConfig(bits=bits))
        code = sum(1 << b for b, _, kept in adc.sar_trace(value) if kept)
        assert code == adc.quantize(value)


class TestEccProperties:
    @given(st.integers(0, 2**16 - 1), st.integers(0, 23))
    def test_single_error_always_corrected(self, data_int, flip_pos):
        code = HammingSecDed(16)
        assume(flip_pos < code.codeword_bits)
        data = np.array([(data_int >> i) & 1 for i in range(16)], dtype=np.int8)
        codeword = code.encode(data)
        codeword[flip_pos] ^= 1
        decoded, status = code.decode(codeword)
        assert status == "corrected"
        assert np.array_equal(decoded, data)

    @given(st.integers(0, 2**16 - 1))
    def test_clean_decode_identity(self, data_int):
        code = HammingSecDed(16)
        data = np.array([(data_int >> i) & 1 for i in range(16)], dtype=np.int8)
        decoded, status = code.decode(code.encode(data))
        assert status == "ok"
        assert np.array_equal(decoded, data)


class TestMarchProperties:
    @given(
        st.integers(4, 32),
        st.sampled_from(
            [
                MemoryFaultKind.SA0,
                MemoryFaultKind.SA1,
                MemoryFaultKind.TF_UP,
                MemoryFaultKind.TF_DOWN,
                MemoryFaultKind.READ1_DISTURB,
                MemoryFaultKind.ADF_NO_ACCESS,
            ]
        ),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_march_c_star_detects_any_single_fault(self, n_cells, kind, data):
        cell = data.draw(st.integers(0, n_cells - 1))
        memory = FaultyBitMemory(n_cells)
        memory.inject(MemoryFault(kind, cell))
        assert MarchTestRunner(march_c_star()).run(memory).fail

    @given(st.integers(1, 64))
    def test_clean_memory_never_fails(self, n_cells):
        assert not MarchTestRunner(march_c_star()).run(
            FaultyBitMemory(n_cells)
        ).fail
