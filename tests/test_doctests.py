"""Execute the doctest examples embedded in public docstrings.

Doc examples that drift from the code are worse than none; this keeps the
ones we ship executable.
"""

import doctest

import pytest

import repro.crossbar.array
import repro.devices.memristor
import repro.faults.models
import repro.utils.rng


@pytest.mark.parametrize(
    "module",
    [
        repro.crossbar.array,
        repro.devices.memristor,
        repro.faults.models,
        repro.utils.rng,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    # These modules are expected to actually contain examples.
    if module in (repro.crossbar.array, repro.faults.models):
        assert results.attempted > 0
