"""Tests for NOR/NOT netlists and AIG conversion."""

import pytest

from repro.eda.aig import AIG, aig_from_truth_table
from repro.eda.boolean import TruthTable
from repro.eda.netlist import NorNetlist, nor_netlist_from_aig


class TestNetlistBasics:
    def test_nor_semantics(self):
        net = NorNetlist(2)
        out = net.add_gate([0, 1])
        net.add_output(out)
        assert net.simulate([0, 0]) == [1]
        assert net.simulate([1, 0]) == [0]
        assert net.simulate([0, 1]) == [0]
        assert net.simulate([1, 1]) == [0]

    def test_not_via_single_input(self):
        net = NorNetlist(1)
        net.add_output(net.add_not(0))
        assert net.simulate([0]) == [1]
        assert net.simulate([1]) == [0]

    def test_constants(self):
        net = NorNetlist(1)
        out = net.add_gate([NorNetlist.CONST0, 0])
        net.add_output(out)
        assert net.simulate([0]) == [1]  # NOR(0, 0) = 1
        assert net.simulate([1]) == [0]

    def test_levels(self):
        net = NorNetlist(2)
        n1 = net.add_not(0)
        n2 = net.add_gate([n1, 1])
        net.add_output(n2)
        assert net.levels() == 2

    def test_unknown_signal_rejected(self):
        net = NorNetlist(2)
        with pytest.raises(ValueError, match="unknown signal"):
            net.add_gate([5])

    def test_empty_gate_rejected(self):
        with pytest.raises(ValueError):
            NorNetlist(1).add_gate([])


class TestAigConversion:
    @pytest.mark.parametrize("n_vars", [1, 2, 3, 4])
    def test_function_preserved(self, n_vars, rng):
        for _ in range(8):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            aig, out = aig_from_truth_table(table)
            aig.add_output(out)
            net = nor_netlist_from_aig(aig.cleanup())
            for m in range(1 << n_vars):
                inputs = [(m >> i) & 1 for i in range(n_vars)]
                assert net.simulate(inputs) == aig.simulate(inputs)

    def test_inverter_sharing(self):
        """An inverter needed by several gates is created exactly once.

        ``AND(x, b) = NOR(NOT x, NOT b)``, so every AND with fanin ``b``
        (positive) needs ``NOT b``; two such ANDs must share one NOT gate.
        """
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        n1 = aig.and_(a, b)
        n2 = aig.and_(a ^ 1, b)
        aig.add_output(n1)
        aig.add_output(n2)
        net = nor_netlist_from_aig(aig)
        nots_on_b = [g for g in net.gates if g.is_not and g.inputs[0] == 1]
        assert len(nots_on_b) == 1

    def test_multi_output(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        aig.add_output(aig.and_(a, b))
        aig.add_output(aig.or_(a, b))
        net = nor_netlist_from_aig(aig)
        assert net.simulate([1, 0]) == [0, 1]
        assert net.simulate([1, 1]) == [1, 1]
