"""Tests for the von-Neumann reference machine (Fig 1a)."""

import numpy as np
import pytest

from repro.core.vonneumann import VonNeumannMachine, VonNeumannParams


class TestVMM:
    def test_result_correct(self, rng):
        machine = VonNeumannMachine()
        w = rng.uniform(-1, 1, (8, 4))
        x = rng.uniform(0, 1, 8)
        assert np.allclose(machine.vmm(x, w), x @ w)

    def test_shape_validation(self):
        machine = VonNeumannMachine()
        with pytest.raises(ValueError, match="shape"):
            machine.vmm(np.zeros(3), np.zeros((4, 2)))


class TestBottleneck:
    """The Fig 1(a) claim: data movement dominates compute."""

    def test_movement_energy_dominates(self, rng):
        machine = VonNeumannMachine()
        w = rng.uniform(-1, 1, (64, 64))
        batch = rng.uniform(0, 1, (8, 64))
        machine.run_workload(batch, w)
        assert machine.costs.energy_fraction("data_movement") > 0.5

    def test_movement_latency_significant(self, rng):
        machine = VonNeumannMachine()
        w = rng.uniform(-1, 1, (64, 64))
        batch = rng.uniform(0, 1, (8, 64))
        machine.run_workload(batch, w)
        total = machine.costs.total.latency
        movement = machine.costs.by_category["data_movement"].latency
        assert movement / total > 0.3

    def test_resident_weights_cut_movement(self, rng):
        w = rng.uniform(-1, 1, (64, 64))
        batch = rng.uniform(0, 1, (8, 64))
        thrashing = VonNeumannMachine()
        thrashing.run_workload(batch, w, weights_resident=False)
        cached = VonNeumannMachine()
        cached.run_workload(batch, w, weights_resident=True)
        assert (
            cached.costs.total.data_moved
            < thrashing.costs.total.data_moved / 4
        )

    def test_resident_result_still_correct(self, rng):
        machine = VonNeumannMachine()
        w = rng.uniform(-1, 1, (16, 8))
        batch = rng.uniform(0, 1, (4, 16))
        out = machine.run_workload(batch, w, weights_resident=True)
        assert np.allclose(out, batch @ w)

    def test_data_moved_accounting(self, rng):
        machine = VonNeumannMachine()
        w = rng.uniform(-1, 1, (16, 8))
        x = rng.uniform(0, 1, 16)
        machine.vmm(x, w)
        # matrix + input + output, 1 byte words.
        assert machine.costs.total.data_moved == 16 * 8 + 16 + 8


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            VonNeumannParams(bus_bandwidth=0)
        with pytest.raises(ValueError):
            VonNeumannParams(alu_parallelism=0)
        with pytest.raises(ValueError):
            VonNeumannParams(word_bytes=0)
