"""Tests for the nodal crossbar solvers (IR drop, sneak paths)."""

import numpy as np
import pytest

from repro.crossbar.solver import (
    NodalCrossbarSolver,
    sneak_path_read_current,
)


class TestIdealLimit:
    def test_zero_parasitics_match_ideal(self):
        g = np.random.default_rng(0).uniform(1e-6, 1e-4, (6, 5))
        v = np.random.default_rng(1).uniform(0, 0.2, 6)
        solver = NodalCrossbarSolver(wire_resistance=0.0, driver_resistance=0.0)
        result = solver.solve(g, v)
        assert np.allclose(result.column_currents, v @ g)

    def test_tiny_wire_resistance_near_ideal(self):
        g = np.full((8, 8), 5e-5)
        v = np.full(8, 0.2)
        solver = NodalCrossbarSolver(wire_resistance=1e-3)
        assert solver.relative_error(g, v) < 1e-4


class TestIRDrop:
    def test_parasitics_reduce_current(self):
        """Wire resistance can only lose signal, never create it."""
        g = np.full((16, 16), 5e-5)
        v = np.full(16, 0.2)
        ideal = v @ g
        actual = NodalCrossbarSolver(wire_resistance=5.0).solve(g, v)
        assert np.all(actual.column_currents <= ideal + 1e-12)
        assert actual.column_currents.sum() < ideal.sum()

    def test_error_grows_with_wire_resistance(self):
        g = np.full((8, 8), 5e-5)
        v = np.full(8, 0.2)
        e1 = NodalCrossbarSolver(wire_resistance=1.0).relative_error(g, v)
        e2 = NodalCrossbarSolver(wire_resistance=10.0).relative_error(g, v)
        assert e2 > e1

    def test_error_grows_with_array_size(self):
        """The scalability limit behind Table I's 'Low' CIM-A rating."""
        solver = NodalCrossbarSolver(wire_resistance=2.0)
        errors = []
        for n in (4, 8, 16):
            g = np.full((n, n), 5e-5)
            v = np.full(n, 0.2)
            errors.append(solver.relative_error(g, v))
        assert errors[0] < errors[1] < errors[2]

    def test_far_cells_see_lower_voltage(self):
        g = np.full((4, 6), 5e-5)
        v = np.full(4, 0.2)
        result = NodalCrossbarSolver(wire_resistance=10.0).solve(g, v)
        row_v = result.row_node_voltages
        assert np.all(np.diff(row_v, axis=1) <= 1e-12)
        assert result.worst_case_drop > 0

    def test_driver_resistance_droops_all_nodes(self):
        g = np.full((4, 4), 5e-5)
        v = np.full(4, 0.2)
        stiff = NodalCrossbarSolver(wire_resistance=1.0, driver_resistance=0.0)
        soft = NodalCrossbarSolver(wire_resistance=1.0, driver_resistance=1e4)
        i_stiff = stiff.solve(g, v).column_currents.sum()
        i_soft = soft.solve(g, v).column_currents.sum()
        assert i_soft < i_stiff

    def test_input_validation(self):
        solver = NodalCrossbarSolver()
        with pytest.raises(ValueError, match="2-D"):
            solver.solve(np.zeros(4), np.zeros(4))
        with pytest.raises(ValueError, match="shape"):
            solver.solve(np.zeros((4, 4)), np.zeros(3))
        with pytest.raises(ValueError, match="non-negative"):
            solver.solve(np.full((2, 2), -1e-5), np.zeros(2))


class TestSneakPaths:
    def test_floating_scheme_overestimates(self):
        """With floating lines, sneak paths add current on top of the
        selected cell's — the effect [46]'s test method exploits."""
        g = np.full((8, 8), 5e-5)
        measured, ideal = sneak_path_read_current(g, 3, 3, scheme="floating")
        assert measured > ideal

    def test_half_select_isolates_to_selected_column(self):
        """Under v/2 biasing only the selected column's cells contribute
        (the known half-select leakage is deterministic); cells elsewhere
        in the array have zero net bias and no influence — unlike the
        floating scheme, whose reading depends on the whole array."""
        g = np.full((8, 8), 5e-5)
        base_half, _ = sneak_path_read_current(g, 3, 3, scheme="v/2")
        base_float, _ = sneak_path_read_current(g, 3, 3, scheme="floating")
        g2 = g.copy()
        g2[3, 5] = 1e-6  # off-column cell
        half2, _ = sneak_path_read_current(g2, 3, 3, scheme="v/2")
        float2, _ = sneak_path_read_current(g2, 3, 3, scheme="floating")
        assert half2 == pytest.approx(base_half, rel=1e-9)
        assert float2 != pytest.approx(base_float, rel=1e-6)

    def test_half_select_leakage_is_analytic(self):
        """v/2 reading = V g_sel + (V/2) * sum of other cells on the
        selected column."""
        rng = np.random.default_rng(5)
        g = rng.uniform(1e-6, 1e-4, (6, 6))
        v = 0.2
        measured, _ = sneak_path_read_current(g, 2, 4, v_read=v, scheme="v/2")
        expected = v * g[2, 4] + (v / 2) * (g[:, 4].sum() - g[2, 4])
        assert measured == pytest.approx(expected, rel=1e-9)

    def test_sneak_current_carries_neighbour_information(self):
        """Changing an *unselected* cell shifts the floating-scheme read —
        the 'region of detection' of the sneak-path test."""
        g = np.full((8, 8), 5e-5)
        base, _ = sneak_path_read_current(g, 2, 2, scheme="floating")
        g_fault = g.copy()
        g_fault[2, 5] = 1e-6  # same row, different column
        changed, _ = sneak_path_read_current(g_fault, 2, 2, scheme="floating")
        assert changed != pytest.approx(base, rel=1e-6)

    def test_single_cell_no_sneak(self):
        g = np.array([[5e-5]])
        measured, ideal = sneak_path_read_current(g, 0, 0, scheme="floating")
        assert measured == pytest.approx(ideal)

    def test_bad_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            sneak_path_read_current(np.full((2, 2), 1e-5), 0, 0, scheme="v/3")

    def test_out_of_bounds_rejected(self):
        with pytest.raises(IndexError):
            sneak_path_read_current(np.full((2, 2), 1e-5), 2, 0)
