"""Tests for the defect-to-fault mapping ([45])."""

import pytest

from repro.faults.defects import (
    Defect,
    DefectType,
    defect_to_fault,
    sample_defects,
)
from repro.faults.models import FaultType


class TestMapping:
    def test_pinhole_causes_sa1(self):
        faults = defect_to_fault(Defect(DefectType.OXIDE_PINHOLE, 2, 3), 8, 8)
        assert len(faults) == 1
        assert faults[0].fault_type is FaultType.STUCK_AT_1
        assert (faults[0].row, faults[0].col) == (2, 3)

    def test_broken_wordline_fans_out_sa1(self):
        """'a broken word-line ... leads to the SA1 behavior' for every
        cell on the row."""
        faults = defect_to_fault(Defect(DefectType.BROKEN_WORDLINE, 5, -1), 8, 8)
        assert len(faults) == 8
        assert all(f.fault_type is FaultType.STUCK_AT_1 for f in faults)
        assert all(f.row == 5 for f in faults)
        assert {f.col for f in faults} == set(range(8))

    def test_broken_bitline_fans_out_sa0(self):
        faults = defect_to_fault(Defect(DefectType.BROKEN_BITLINE, -1, 2), 8, 8)
        assert len(faults) == 8
        assert all(f.fault_type is FaultType.STUCK_AT_0 for f in faults)
        assert all(f.col == 2 for f in faults)

    def test_under_forming_causes_sa0(self):
        faults = defect_to_fault(Defect(DefectType.UNDER_FORMING, 0, 0), 4, 4)
        assert faults[0].fault_type is FaultType.STUCK_AT_0

    def test_contamination_causes_transition_fault(self):
        faults = defect_to_fault(
            Defect(DefectType.ELECTRODE_CONTAMINATION, 1, 1), 4, 4
        )
        assert faults[0].fault_type is FaultType.TRANSITION

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            defect_to_fault(Defect(DefectType.OXIDE_PINHOLE, 9, 0), 4, 4)
        with pytest.raises(ValueError):
            defect_to_fault(Defect(DefectType.BROKEN_WORDLINE, 9, -1), 4, 4)


class TestSampling:
    def test_rates_control_population(self):
        few = sample_defects(32, 32, cell_defect_rate=0.001,
                             line_defect_rate=0.0, rng=0)
        many = sample_defects(32, 32, cell_defect_rate=0.1,
                              line_defect_rate=0.0, rng=0)
        assert len(many) > len(few)

    def test_zero_rates_empty(self):
        assert sample_defects(16, 16, 0.0, 0.0, rng=0) == []

    def test_deterministic_with_seed(self):
        a = sample_defects(16, 16, 0.05, 0.05, rng=42)
        b = sample_defects(16, 16, 0.05, 0.05, rng=42)
        assert a == b

    def test_line_defects_present_at_high_rate(self):
        defects = sample_defects(16, 16, 0.0, 0.5, rng=1)
        kinds = {d.defect_type for d in defects}
        assert DefectType.BROKEN_WORDLINE in kinds or DefectType.BROKEN_BITLINE in kinds
