"""Tests for write biasing schemes and disturbance analysis."""

import math

import pytest

from repro.crossbar.write_schemes import (
    disturb_rate_per_write,
    max_disturb_free_voltage,
    scheme_comparison,
    stress_profile,
)
from repro.devices.memristor import VTEAMParams


class TestStressProfiles:
    def test_v2_stress_pattern(self):
        profile = stress_profile(2.0, "v/2")
        assert profile.selected == 2.0
        assert profile.half_selected == 1.0
        assert profile.unselected == 0.0

    def test_v3_stress_pattern(self):
        profile = stress_profile(1.8, "v/3")
        assert profile.half_selected == pytest.approx(0.6)
        assert profile.unselected == pytest.approx(0.6)

    def test_populations(self):
        profile = stress_profile(2.0, "v/2")
        pops = profile.populations(8, 8)
        assert pops["selected"] == 1
        assert pops["half_selected"] == 14
        assert pops["unselected"] == 49
        assert sum(pops.values()) == 64

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            stress_profile(2.0, "v/4")


class TestDisturbFreeVoltage:
    def test_v3_tolerates_higher_voltage(self):
        """The fundamental scheme trade-off: V/3 divides the stress by 3,
        so its disturb-free window is 1.5x wider."""
        v2 = max_disturb_free_voltage(scheme="v/2")
        v3 = max_disturb_free_voltage(scheme="v/3")
        assert v3 == pytest.approx(1.5 * v2)

    def test_scales_with_threshold(self):
        low = max_disturb_free_voltage(VTEAMParams(v_off=0.5, v_on=-0.5))
        high = max_disturb_free_voltage(VTEAMParams(v_off=1.0, v_on=-1.0))
        assert high == pytest.approx(2 * low)

    def test_margin_bounds(self):
        with pytest.raises(ValueError):
            max_disturb_free_voltage(margin=0)


class TestDisturbRate:
    def test_safe_voltage_no_motion(self):
        v_safe = max_disturb_free_voltage(scheme="v/2")
        report = disturb_rate_per_write(v_safe, "v/2")
        assert report["disturb_free"]
        assert math.isinf(report["writes_to_disturb"])

    def test_overdriven_write_has_finite_budget(self):
        report = disturb_rate_per_write(2.2, "v/2")
        assert not report["disturb_free"]
        assert math.isfinite(report["writes_to_disturb"])
        assert report["writes_to_disturb"] > 1

    def test_higher_voltage_smaller_budget(self):
        mild = disturb_rate_per_write(1.6, "v/2")
        harsh = disturb_rate_per_write(2.4, "v/2")
        assert (
            harsh["half_selected_motion"] > mild["half_selected_motion"]
        )

    def test_v3_unselected_also_stressed(self):
        report = disturb_rate_per_write(2.4, "v/3")
        # At V/3 = 0.8 > 0.7 threshold, even unselected cells move.
        assert report["unselected_motion"] > 0


class TestSchemeComparison:
    def test_energy_vs_margin_tradeoff(self):
        cmp = scheme_comparison(64, 64, 1.8)
        # V/3 stresses the whole array and burns more energy...
        assert cmp["v/3"]["stressed_cells"] > cmp["v/2"]["stressed_cells"]
        assert cmp["v/3"]["write_energy_J"] > cmp["v/2"]["write_energy_J"]
        # ...but tolerates a higher write voltage.
        assert (
            cmp["v/3"]["max_disturb_free_v"]
            > cmp["v/2"]["max_disturb_free_v"]
        )

    def test_half_select_voltage_relation(self):
        cmp = scheme_comparison(16, 16, 1.8)
        assert cmp["v/2"]["half_select_voltage"] == pytest.approx(0.9)
        assert cmp["v/3"]["half_select_voltage"] == pytest.approx(0.6)
