"""Tests for the pipelined schedule simulator (repro.pipeline.schedule)."""

import numpy as np
import pytest

from repro.apps.cnn import SimpleCNN, CrossbarCNN
from repro.apps.nn import MLP, CrossbarMLP
from repro.pipeline import (
    PipelineScheduler,
    ScheduleParams,
    TileInventory,
    allocate,
    trace_cnn,
    trace_mlp,
)
from repro.pipeline.explore import reference_conv_graph, reference_graph
from repro.utils import telemetry


def _mlp_setup(n_tiles=8, duplication="auto", seed=42):
    graph = reference_graph()
    alloc = allocate(
        graph, TileInventory(n_tiles=n_tiles), duplication=duplication, rng=seed
    )
    x = np.random.default_rng(7).uniform(0, 1, (32, graph.in_features))
    return graph, alloc, x


class TestNumericalIdentity:
    def test_pipelined_equals_sequential_noiseless(self):
        _, alloc, x = _mlp_setup()
        sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=4))
        seq = sched.run(x, mode="sequential", noisy=False)
        pipe = sched.run(x, mode="pipelined", noisy=False)
        assert np.array_equal(seq.outputs, pipe.outputs)

    def test_pipelined_equals_sequential_noisy(self):
        """Bit-identity must survive stochastic read noise: per-replica
        call order is schedule-invariant, so RNG streams line up."""
        graph = reference_graph()
        x = np.random.default_rng(7).uniform(0, 1, (32, graph.in_features))
        outs = []
        for mode in ("sequential", "pipelined"):
            alloc = allocate(
                graph, TileInventory(n_tiles=8), duplication="auto", rng=42
            )
            sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=4))
            outs.append(sched.run(x, mode=mode, noisy=True).outputs)
        assert np.array_equal(outs[0], outs[1])

    def test_matches_crossbar_mlp(self, rng):
        """One replica per stage + the traced IR must reproduce the
        existing CrossbarMLP deployment.  CrossbarMLP pre-multiplies
        ``w_scale * input_scale`` where the stage multiplies twice, so
        agreement is to the last ulp rather than bit-exact."""
        mlp = MLP((16, 24, 12, 5), rng=rng)
        calib = rng.uniform(0, 1, (32, 16))
        x = rng.uniform(0, 1, (20, 16))
        ref = CrossbarMLP(mlp, calib, rng=0).forward_batch(x, noisy=False)
        graph = trace_mlp(mlp, calib)
        alloc = allocate(graph, TileInventory(n_tiles=3), rng=0)
        out = (
            PipelineScheduler(alloc, ScheduleParams(micro_batch=20))
            .run(x, mode="pipelined")
            .outputs
        )
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-14)

    def test_matches_crossbar_cnn_exactly(self, rng):
        cnn = SimpleCNN(rng=rng)
        calib = rng.uniform(0, 1, (20, 8, 8))
        imgs = rng.uniform(0, 1, (10, 8, 8))
        ref = CrossbarCNN(cnn, calib, rng=0).forward_batch(imgs, noisy=False)
        graph = trace_cnn(cnn, calib)
        alloc = allocate(graph, TileInventory(n_tiles=4), rng=0)
        out = (
            PipelineScheduler(alloc, ScheduleParams(micro_batch=10))
            .run(imgs, mode="pipelined")
            .outputs
        )
        assert np.array_equal(out, ref)


class TestTiming:
    def test_pipelining_beats_sequential(self):
        _, alloc, x = _mlp_setup(duplication="none", n_tiles=4)
        sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=4))
        seq = sched.run(x, mode="sequential")
        pipe = sched.run(x, mode="pipelined")
        assert pipe.makespan < seq.makespan
        assert pipe.throughput > seq.throughput

    def test_single_microbatch_modes_agree(self):
        """With one micro-batch there is nothing to overlap: both modes
        must produce the same makespan."""
        _, alloc, x = _mlp_setup(duplication="none", n_tiles=4)
        sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=32))
        seq = sched.run(x, mode="sequential")
        pipe = sched.run(x, mode="pipelined")
        assert seq.makespan == pytest.approx(pipe.makespan)

    def test_duplication_speeds_up_bottleneck(self):
        """Replicating the conv stage must raise pipelined throughput."""
        graph = reference_conv_graph()
        imgs = np.random.default_rng(3).uniform(0, 1, (16, 8, 8))
        results = {}
        for dup in ("none", "auto"):
            alloc = allocate(
                graph, TileInventory(n_tiles=16), duplication=dup, rng=0
            )
            sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=2))
            results[dup] = sched.run(imgs, mode="pipelined")
        assert (
            results["auto"].throughput > 1.5 * results["none"].throughput
        )

    def test_sequential_buffers_deeper_than_pipelined(self):
        _, alloc, x = _mlp_setup(duplication="none", n_tiles=4)
        sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=4))
        seq = sched.run(x, mode="sequential")
        pipe = sched.run(x, mode="pipelined")
        assert max(seq.buffer_peaks) >= max(pipe.buffer_peaks)
        # Layer-sequential stages (nearly) the whole batch between layers
        # (the last micro-batch hands off at the barrier instant).
        assert max(seq.buffer_peaks) >= seq.n_microbatches - 1

    def test_utilization_bounds(self):
        _, alloc, x = _mlp_setup()
        res = PipelineScheduler(alloc, ScheduleParams(micro_batch=4)).run(x)
        assert 0 < res.utilization() <= 1
        for u in res.stage_utilization():
            assert 0 < u <= 1

    def test_steady_state_at_least_end_to_end(self):
        _, alloc, x = _mlp_setup()
        res = PipelineScheduler(alloc, ScheduleParams(micro_batch=4)).run(x)
        # Steady state excludes ramp-up, so it can only be faster.
        assert res.steady_state_throughput >= res.throughput


class TestAccounting:
    def test_energy_is_schedule_invariant(self):
        """Both modes do the same compute and the same transfers, so the
        charged categories must match almost exactly."""
        graph = reference_graph()
        x = np.random.default_rng(7).uniform(0, 1, (32, graph.in_features))
        cats = {}
        for mode in ("sequential", "pipelined"):
            alloc = allocate(
                graph, TileInventory(n_tiles=8), duplication="auto", rng=42
            )
            sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=4))
            cats[mode] = sched.run(x, mode=mode).categories
        assert set(cats["sequential"]) == set(cats["pipelined"])
        for name, entry in cats["sequential"].items():
            assert entry["energy"] == pytest.approx(
                cats["pipelined"][name]["energy"]
            )

    def test_report_conserves(self):
        _, alloc, x = _mlp_setup()
        res = PipelineScheduler(alloc, ScheduleParams(micro_batch=4)).run(x)
        report = res.report("pipeline_test")
        report.validate()  # fractions sum to 1, nothing negative
        assert report.energy_fractions()
        assert sum(report.energy_fractions().values()) == pytest.approx(1.0)
        assert "interconnect" in report.categories
        assert report.counters["pipeline.transfer.bytes"] > 0
        assert report.counters["pipeline.tile_busy_s"] > 0
        assert report.area  # machine area attached

    def test_run_costs_exclude_programming(self):
        """The per-run report covers the inference phase only; the
        allocation-time programming charge stays out of the delta."""
        _, alloc, x = _mlp_setup()
        res = PipelineScheduler(alloc, ScheduleParams(micro_batch=4)).run(x)
        assert "programming" not in res.categories
        assert "programming" in alloc.total_costs().by_category

    def test_side_counters_reach_enclosing_scope(self):
        _, alloc, x = _mlp_setup()
        sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=4))
        with telemetry.scoped() as scope:
            sched.run(x)
        counters = scope.snapshot(include_timers=False)["counters"]
        assert counters["pipeline.samples"] == 32
        assert counters["pipeline.transfer.bytes"] > 0
        assert counters["pipeline.tile_busy_s"] > 0
        assert any(k.startswith("pipeline.stage.") for k in counters)

    def test_transfer_bytes_match_payloads(self):
        graph = reference_graph()
        alloc = allocate(graph, TileInventory(n_tiles=4), rng=0)
        x = np.random.default_rng(7).uniform(0, 1, (8, graph.in_features))
        sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=8))
        res = sched.run(x)
        widths = [graph.in_features] + [n.out_features for n in graph]
        expected = sum(w * 8 * 2 for w in widths)  # 2 B/value, batch 8
        assert res.transfer_bytes == expected


class TestValidation:
    def test_bad_mode_rejected(self):
        _, alloc, x = _mlp_setup()
        with pytest.raises(ValueError, match="mode"):
            PipelineScheduler(alloc).run(x, mode="dataflow")

    def test_empty_batch_rejected(self):
        graph, alloc, _ = _mlp_setup()
        with pytest.raises(ValueError, match="at least one"):
            PipelineScheduler(alloc).run(
                np.empty((0, graph.in_features))
            )

    def test_bad_micro_batch_rejected(self):
        with pytest.raises(ValueError, match="micro_batch"):
            ScheduleParams(micro_batch=0)
