"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        a = ensure_rng(np.int64(7)).random(3)
        b = ensure_rng(7).random(3)
        assert np.array_equal(a, b)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="rng must be"):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="count"):
            spawn_rngs(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        assert not np.array_equal(children[0].random(10), children[1].random(10))

    def test_deterministic_given_seed(self):
        a = [g.random() for g in spawn_rngs(9, 3)]
        b = [g.random() for g in spawn_rngs(9, 3)]
        assert a == b
