"""Tests for AIG balancing and BDD sifting."""

import pytest

from repro.eda.aig import AIG, aig_from_truth_table
from repro.eda.boolean import TruthTable
from repro.eda.optimization import (
    aig_balance,
    bdd_size_for_order,
    permute_truth_table,
    sift_variable_order,
)


class TestAigBalance:
    def test_chain_becomes_logarithmic(self):
        """AND-chain of 8 inputs: depth 7 -> depth 3."""
        aig = AIG(8)
        acc = aig.input_lit(0)
        for i in range(1, 8):
            acc = aig.and_(acc, aig.input_lit(i))
        aig.add_output(acc)
        assert aig.levels() == 7
        balanced = aig_balance(aig)
        assert balanced.levels() == 3
        assert balanced.to_truth_tables()[0] == aig.to_truth_tables()[0]

    @pytest.mark.parametrize("n_vars", [2, 3, 4])
    def test_function_preserved(self, n_vars, rng):
        for _ in range(8):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            aig, out = aig_from_truth_table(table)
            aig.add_output(out)
            balanced = aig_balance(aig)
            assert balanced.to_truth_tables()[0] == table

    def test_never_deepens(self, rng):
        for _ in range(8):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            aig, out = aig_from_truth_table(table)
            aig.add_output(out)
            assert aig_balance(aig).levels() <= aig.cleanup().levels()

    def test_multi_output(self):
        aig = AIG(4)
        a, b, c, d = (aig.input_lit(i) for i in range(4))
        aig.add_output(aig.and_(aig.and_(aig.and_(a, b), c), d))
        aig.add_output(aig.or_(a, d))
        balanced = aig_balance(aig)
        originals = aig.to_truth_tables()
        rebuilt = balanced.to_truth_tables()
        assert originals == rebuilt

    def test_balancing_improves_mapped_delay(self):
        """Depth reduction propagates into technology mapping."""
        from repro.eda.majority_mapping import map_mig_to_majority
        from repro.eda.mig import mig_from_aig

        aig = AIG(8)
        acc = aig.input_lit(0)
        for i in range(1, 8):
            acc = aig.and_(acc, aig.input_lit(i))
        aig.add_output(acc)
        before = map_mig_to_majority(mig_from_aig(aig)).delay
        after = map_mig_to_majority(mig_from_aig(aig_balance(aig))).delay
        assert after < before


class TestPermutation:
    def test_identity(self, rng):
        table = TruthTable(3, int(rng.integers(0, 256)))
        assert permute_truth_table(table, [0, 1, 2]) == table

    def test_swap_consistency(self):
        table = TruthTable.from_function(2, lambda a, b: a & ~b & 1)
        swapped = permute_truth_table(table, [1, 0])
        # new x0 = old x1, new x1 = old x0: f'(a, b) = f(b, a).
        for a in (0, 1):
            for b in (0, 1):
                assert swapped.evaluate([a, b]) == table.evaluate([b, a])

    def test_involution(self, rng):
        table = TruthTable(4, int(rng.integers(0, 1 << 16)))
        order = [2, 0, 3, 1]
        inverse = [order.index(i) for i in range(4)]
        assert permute_truth_table(
            permute_truth_table(table, order), inverse
        ) == table

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            permute_truth_table(TruthTable.constant(3, True), [0, 1, 1])


class TestSifting:
    def test_order_dependent_function(self):
        """f = x0 x3 + x1 x4 + x2 x5: interleaved order is exponentially
        worse than the paired order — sifting must find a small one."""
        table = TruthTable.from_function(
            6, lambda a, b, c, d, e, f: (a & d) | (b & e) | (c & f)
        )
        bad = bdd_size_for_order(table, [0, 1, 2, 3, 4, 5])
        good = bdd_size_for_order(table, [0, 3, 1, 4, 2, 5])
        assert good < bad
        order, size = sift_variable_order(table)
        assert size <= good

    def test_sifted_size_never_worse_than_initial(self, rng):
        for _ in range(5):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            initial = bdd_size_for_order(table, [0, 1, 2, 3])
            _, sifted = sift_variable_order(table)
            assert sifted <= initial

    def test_result_order_is_valid_permutation(self, rng):
        table = TruthTable(4, int(rng.integers(0, 1 << 16)))
        order, _ = sift_variable_order(table)
        assert sorted(order) == [0, 1, 2, 3]

    def test_max_passes_validated(self):
        with pytest.raises(ValueError):
            sift_variable_order(TruthTable.constant(2, True), max_passes=0)
