"""Tests for the sense amplifier (CIM-P / Scouting Logic)."""

import numpy as np
import pytest

from repro.periphery.sense_amp import SenseAmpConfig, SenseAmplifier


I_LRS = 1e-5
I_HRS = 1e-8


class TestCompare:
    def test_basic_threshold(self):
        sa = SenseAmplifier(rng=0)
        assert sa.compare(2e-5, 1e-5)
        assert not sa.compare(5e-6, 1e-5)

    def test_offset_is_static_per_instance(self):
        sa = SenseAmplifier(SenseAmpConfig(offset_sigma=1e-6), rng=1)
        assert sa.offset == sa.offset

    def test_offset_distribution(self):
        offsets = [
            SenseAmplifier(SenseAmpConfig(offset_sigma=1e-6), rng=s).offset
            for s in range(200)
        ]
        assert np.std(offsets) == pytest.approx(1e-6, rel=0.2)

    def test_zero_sigma_zero_offset(self):
        assert SenseAmplifier(SenseAmpConfig(offset_sigma=0.0), rng=0).offset == 0.0

    def test_sense_count_and_energy(self):
        sa = SenseAmplifier(rng=0)
        sa.compare(1e-5, 2e-5)
        sa.compare(1e-5, 2e-5)
        assert sa.sense_count == 2
        assert sa.energy_consumed == pytest.approx(
            2 * sa.config.energy_per_sense
        )


class TestScoutingSenses:
    def test_or_truth_table(self):
        sa = SenseAmplifier(rng=0)
        cases = {
            (I_HRS, I_HRS): False,
            (I_LRS, I_HRS): True,
            (I_HRS, I_LRS): True,
            (I_LRS, I_LRS): True,
        }
        for currents, expected in cases.items():
            assert sa.sense_or(currents, I_LRS) == expected

    def test_and_truth_table(self):
        sa = SenseAmplifier(rng=0)
        cases = {
            (I_HRS, I_HRS): False,
            (I_LRS, I_HRS): False,
            (I_HRS, I_LRS): False,
            (I_LRS, I_LRS): True,
        }
        for currents, expected in cases.items():
            assert sa.sense_and(currents, I_LRS, n=2) == expected

    def test_xor_truth_table(self):
        sa = SenseAmplifier(rng=0)
        cases = {
            (I_HRS, I_HRS): False,
            (I_LRS, I_HRS): True,
            (I_HRS, I_LRS): True,
            (I_LRS, I_LRS): False,
        }
        for currents, expected in cases.items():
            assert sa.sense_xor2(currents, I_LRS) == expected

    def test_and_multi_input(self):
        sa = SenseAmplifier(rng=0)
        assert sa.sense_and([I_LRS] * 4, I_LRS, n=4)
        assert not sa.sense_and([I_LRS] * 3 + [I_HRS], I_LRS, n=4)

    def test_and_requires_positive_n(self):
        with pytest.raises(ValueError):
            SenseAmplifier(rng=0).sense_and([I_LRS], I_LRS, n=0)

    def test_large_offset_causes_errors(self):
        """Low noise margin + comparator offset = wrong outputs — the
        Section II-E reliability concern, quantified."""
        errors = 0
        for seed in range(100):
            inst = SenseAmplifier(SenseAmpConfig(offset_sigma=I_LRS), rng=seed)
            if inst.sense_or([I_HRS, I_HRS], I_LRS):
                errors += 1
        assert errors > 0
