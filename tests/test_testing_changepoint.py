"""Tests for the power-monitoring changepoint detection (Fig 7, [52])."""

import numpy as np
import pytest

from repro.testing.changepoint import (
    CusumDetector,
    FaultRateEstimator,
    OnlinePowerTestbench,
    PageHinkleyDetector,
    PowerMonitor,
    power_shift_features,
)
from repro.crossbar.array import CrossbarArray, CrossbarConfig


def _step_series(n=400, change_at=200, shift=5.0, rng_seed=0):
    gen = np.random.default_rng(rng_seed)
    series = gen.normal(0.0, 1.0, n)
    series[change_at:] += shift
    return series


class TestCusum:
    def test_detects_step_shortly_after_change(self):
        det = CusumDetector(threshold=8, drift=0.5, warmup=50)
        idx = det.run(_step_series())
        assert idx is not None
        assert 200 <= idx <= 220

    def test_no_false_alarm_on_stationary_series(self):
        """Default thresholds hold a 1000-sample stationary series without
        alarming across many seeds."""
        for seed in range(10):
            gen = np.random.default_rng(seed)
            assert CusumDetector().run(gen.normal(0, 1, 1000)) is None

    def test_detects_downward_shift(self):
        det = CusumDetector(threshold=8, drift=0.5, warmup=50)
        idx = det.run(_step_series(shift=-5.0))
        assert idx is not None and idx >= 200

    def test_reset_clears_state(self):
        det = CusumDetector(warmup=10)
        det.run(_step_series(n=100, change_at=50))
        det.reset()
        assert det.detection_index is None

    def test_param_validation(self):
        with pytest.raises(ValueError):
            CusumDetector(threshold=0)
        with pytest.raises(ValueError):
            CusumDetector(warmup=1)


class TestPageHinkley:
    def test_detects_step(self):
        det = PageHinkleyDetector(threshold=10, delta=0.2, warmup=50)
        idx = det.run(_step_series())
        assert idx is not None
        assert 200 <= idx <= 230

    def test_agrees_with_cusum_roughly(self):
        series = _step_series(rng_seed=3)
        c = CusumDetector(warmup=50).run(series)
        p = PageHinkleyDetector(warmup=50).run(series)
        assert abs(c - p) < 30

    def test_stationary_no_alarm(self):
        gen = np.random.default_rng(4)
        det = PageHinkleyDetector(threshold=15, delta=0.3, warmup=50)
        assert det.run(gen.normal(0, 1, 800)) is None


class TestPowerMonitor:
    def test_trace_grows(self):
        array = CrossbarArray(CrossbarConfig(rows=16, cols=16), rng=0)
        array.program(np.full((16, 16), 5e-5))
        monitor = PowerMonitor(array, rng=1)
        monitor.run(25)
        assert len(monitor.trace) == 25
        assert all(p >= 0 for p in monitor.trace)

    def test_power_scale_tracks_conductance(self):
        low = CrossbarArray(CrossbarConfig(rows=16, cols=16), rng=0)
        low.program(np.full((16, 16), 1e-5))
        high = CrossbarArray(CrossbarConfig(rows=16, cols=16), rng=0)
        high.program(np.full((16, 16), 9e-5))
        m_low = PowerMonitor(low, rng=2)
        m_high = PowerMonitor(high, rng=2)
        assert np.mean(m_high.run(50)) > np.mean(m_low.run(50))


class TestFig7Scenario:
    """Fault burst at cycle 600 -> changepoint detected shortly after."""

    def test_detection_near_injection_cycle(self):
        bench = OnlinePowerTestbench(
            rows=32, cols=32, fault_rate=0.1, inject_at=600, rng=9
        )
        trace = bench.run(1200)
        detected = bench.detect(trace)
        assert detected is not None
        assert 600 <= detected <= 700

    def test_no_detection_without_faults(self):
        bench = OnlinePowerTestbench(
            rows=32, cols=32, fault_rate=0.0, inject_at=600, rng=10
        )
        trace = bench.run(1200)
        assert bench.detect(trace) is None

    def test_power_shifts_up_for_sa1_burst(self):
        bench = OnlinePowerTestbench(
            rows=32, cols=32, fault_rate=0.15, sa1_fraction=1.0,
            inject_at=300, rng=11,
        )
        trace = bench.run(600)
        assert trace[300:].mean() > trace[:300].mean()

    def test_invalid_total_cycles(self):
        bench = OnlinePowerTestbench(inject_at=600, rng=0)
        with pytest.raises(ValueError):
            bench.run(500)


class TestFaultRateEstimator:
    def test_features_shape(self):
        f = power_shift_features(np.ones(100), np.ones(50) * 1.2)
        assert f.shape == (4,)
        assert f[0] == pytest.approx(0.2)

    def test_untrained_predict_rejected(self):
        with pytest.raises(RuntimeError):
            FaultRateEstimator().predict(np.zeros(4))

    def test_training_gives_usable_model(self):
        """[52]'s regression: power statistics -> faulty-cell percentage."""
        estimator, r2 = FaultRateEstimator.train_on_simulations(
            rows=32,
            cols=32,
            fault_rates=np.linspace(0.02, 0.25, 6),
            samples_per_rate=3,
            cycles=80,
            rng=12,
        )
        assert r2 > 0.8

    def test_estimates_held_out_fault_rate(self):
        estimator, _ = FaultRateEstimator.train_on_simulations(
            rows=32,
            cols=32,
            fault_rates=np.linspace(0.02, 0.25, 6),
            samples_per_rate=3,
            cycles=80,
            rng=13,
        )
        bench = OnlinePowerTestbench(
            rows=32, cols=32, fault_rate=0.12, inject_at=80, rng=99
        )
        trace = bench.run(160)
        features = power_shift_features(trace[:80], trace[80:])
        estimate = estimator.predict(features)
        assert estimate == pytest.approx(0.12, abs=0.06)
