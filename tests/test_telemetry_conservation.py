"""Conservation invariants of the run reports.

Whatever a machine model spends must appear — exactly once — in its
report: the per-category sums equal the accumulator totals, and every
fraction family lies in [0, 1] and sums to 1.  These tests pin that for
all three instrumented machines (CIMCore, VonNeumannMachine,
CIMAccelerator).
"""

import numpy as np
import pytest

from repro.core.accelerator import AcceleratorParams, CIMAccelerator
from repro.core.cim_core import CIMCore, CIMCoreParams
from repro.core.vonneumann import VonNeumannMachine


def _assert_conserved(report, costs_total):
    assert report.total_energy == pytest.approx(costs_total.energy, rel=1e-12)
    assert report.total_latency == pytest.approx(costs_total.latency, rel=1e-12)
    assert report.total_data_moved == pytest.approx(
        costs_total.data_moved, rel=1e-12
    )
    report.validate()
    for fractions in (
        report.energy_fractions(),
        report.latency_fractions(),
        report.area_fractions(),
    ):
        for value in fractions.values():
            assert 0.0 <= value <= 1.0
        if fractions and sum(fractions.values()) > 0:
            assert sum(fractions.values()) == pytest.approx(1.0)


class TestCIMCoreConservation:
    @pytest.fixture()
    def core(self):
        core = CIMCore(CIMCoreParams(rows=24, logical_cols=8), rng=0)
        gen = np.random.default_rng(1)
        core.program_weights(gen.uniform(-1, 1, (24, 8)))
        core.vmm_batch(gen.uniform(0, 1, (4, 24)), noisy=False)
        core.write_bit_row(0, gen.integers(0, 2, core.array.cols))
        core.scouting_or([0, 1])
        return core

    def test_category_sums_equal_total(self, core):
        _assert_conserved(core.report(), core.costs.total)

    def test_driver_and_decoder_accounted(self, core):
        categories = set(core.report().categories)
        assert {"programming", "dac", "array", "adc", "driver",
                "decoder"}.issubset(categories)
        assert core.report().categories["driver"]["energy"] > 0

    def test_side_counters_present(self, core):
        counters = core.side_counters()
        assert counters["crossbar.read_ops"] > 0
        assert counters["driver.activations"] > 0
        assert counters["sense_amp.compares"] > 0

    def test_area_breakdown_positive(self, core):
        area = core.area_breakdown()
        assert set(area) == {"adc", "dac", "driver", "sense_amp", "crossbar"}
        assert all(v > 0 for v in area.values())


class TestVonNeumannConservation:
    def test_category_sums_equal_total(self):
        machine = VonNeumannMachine()
        gen = np.random.default_rng(0)
        machine.run_workload(
            gen.uniform(0, 1, (6, 16)), gen.uniform(-1, 1, (16, 4))
        )
        report = machine.report()
        _assert_conserved(report, machine.costs.total)
        assert report.counters["vonneumann.vmm_calls"] == 6.0
        assert report.counters["vonneumann.macs"] == 6.0 * 16 * 4


class TestAcceleratorConservation:
    def test_reduced_report_matches_total_costs(self):
        gen = np.random.default_rng(0)
        accel = CIMAccelerator(
            gen.uniform(-1, 1, (40, 20)),
            params=AcceleratorParams(tile_rows=16, tile_cols=8),
            rng=0,
        )
        accel.vmm_batch(gen.uniform(0, 1, (3, 40)), noisy=False)
        report = accel.report()
        _assert_conserved(report, accel.total_costs().total)

    def test_report_is_sum_of_tile_reports(self):
        gen = np.random.default_rng(2)
        accel = CIMAccelerator(
            gen.uniform(-1, 1, (20, 10)),
            params=AcceleratorParams(tile_rows=10, tile_cols=5),
            rng=0,
        )
        accel.vmm(gen.uniform(0, 1, 20), noisy=False)
        per_tile = sum(
            core.costs.total.energy
            for tile_row in accel.tiles
            for core in tile_row
        )
        assert accel.report().total_energy == pytest.approx(per_tile, rel=1e-12)
