"""Tests for the fork-join attention workload (repro.workloads.attention)."""

import numpy as np
import pytest

from repro.pipeline import GRAPH_INPUT, TileInventory, allocate
from repro.pipeline.schedule import PipelineScheduler, ScheduleParams
from repro.utils import telemetry
from repro.workloads.attention import (
    AttentionParams,
    attention_graph,
    explore_attention,
    run_attention,
)

SMALL = AttentionParams(seq=4, d_model=8, d_head=4)


class TestAttentionGraph:
    def test_topology_is_fork_join(self):
        g = attention_graph(SMALL)
        assert tuple(g.entry_names) == ("wq", "wk", "wv")
        assert g.sink_name == "wo"
        assert g.producers("scores") == ("wq", "wk")
        assert g.producers("attend") == ("scores", "wv")
        # 5 internal edges; with 3 host->entry and 1 sink->host links the
        # scheduler charges 9 transfers per micro-batch.
        assert g.edges() == [
            ("wq", "scores"),
            ("wk", "scores"),
            ("scores", "attend"),
            ("wv", "attend"),
            ("attend", "wo"),
        ]

    def test_reference_forward_matches_numpy_attention(self):
        params = SMALL
        g = attention_graph(params, model_seed=11)
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, (5, params.seq, params.d_model))
        out = g.reference_forward(x.reshape(5, -1))

        wq = g.node("wq").weights
        wk = g.node("wk").weights
        wv = g.node("wv").weights
        wo = g.node("wo").weights
        q = np.maximum(x @ wq, 0.0)
        scores = q @ (x @ wk).transpose(0, 2, 1) / np.sqrt(params.d_head)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        att = np.maximum(probs @ (x @ wv), 0.0)
        expected = (att @ wo).reshape(5, -1)
        assert np.allclose(out, expected)

    def test_softmax_rows_normalized_in_reference(self):
        g = attention_graph(SMALL)
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (3, SMALL.seq * SMALL.d_model))
        scores = g.node("scores")
        q = g.node("wq").reference_forward(x)
        k = g.node("wk").reference_forward(x)
        probs = scores.reference_forward(q, k).reshape(
            3, SMALL.seq, SMALL.seq
        )
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)

    def test_deterministic_for_seed(self):
        a = attention_graph(SMALL, model_seed=7)
        b = attention_graph(SMALL, model_seed=7)
        assert np.array_equal(a.node("wq").weights, b.node("wq").weights)
        assert a.node("wq").input_scale == b.node("wq").input_scale


class TestScheduledAttention:
    def test_pipelined_bit_identical_to_sequential(self):
        g = attention_graph(SMALL)
        alloc = allocate(g, TileInventory(n_tiles=16), rng=0)
        sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=2))
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, (8, SMALL.seq * SMALL.d_model))
        seq_run = sched.run(x, mode="sequential")
        pipe_run = sched.run(x, mode="pipelined")
        assert np.array_equal(seq_run.outputs, pipe_run.outputs)
        assert pipe_run.makespan < seq_run.makespan

    def test_branch_edges_each_charged(self):
        """The fork (host -> wq/wk/wv) and join (wq,wk -> scores;
        scores,wv -> attend) edges are all charged: 9 transfers per
        micro-batch (3 entry + 5 internal + 1 output)."""
        g = attention_graph(SMALL)
        alloc = allocate(g, TileInventory(n_tiles=16), rng=0)
        sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=2))
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, (8, SMALL.seq * SMALL.d_model))
        n_mb = 4
        with telemetry.scoped() as scope:
            sched.run(x, mode="pipelined")
            counters = scope.snapshot(include_timers=False)["counters"]
        assert counters["pipeline.transfers"] == 9 * n_mb
        assert counters["pipeline.transfer.bytes"] > 0

    def test_transfer_energy_identical_across_modes(self):
        g = attention_graph(SMALL)
        alloc = allocate(g, TileInventory(n_tiles=16), rng=0)
        sched = PipelineScheduler(alloc, ScheduleParams(micro_batch=2))
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, (8, SMALL.seq * SMALL.d_model))
        seq_run = sched.run(x, mode="sequential")
        pipe_run = sched.run(x, mode="pipelined")
        assert seq_run.transfer_bytes == pipe_run.transfer_bytes

    def test_crossbar_matches_reference_within_quantization(self):
        row = run_attention(SMALL, batch=8, micro_batch=2)
        assert row["bit_identical"] is True
        assert row["max_ref_error"] < 1.0
        assert row["speedup"] > 1.0


class TestExploreAttention:
    def test_rows_cover_grid_with_feasibility(self):
        rows = explore_attention(
            seqs=(4,),
            d_heads=(4,),
            micro_batches=(2, 4),
            d_model=8,
            batch=8,
            workers=0,
        )
        assert len(rows) == 2
        assert all(r["feasible"] for r in rows)
        assert all(r["bit_identical"] for r in rows)

    def test_infeasible_point_flagged_not_raised(self):
        rows = explore_attention(
            seqs=(8,),
            d_heads=(8,),
            micro_batches=(4,),
            d_model=16,
            batch=8,
            n_tiles=1,
            workers=0,
        )
        assert len(rows) == 1
        assert rows[0]["feasible"] is False
        assert "tiles" in rows[0]["reason"]

    def test_serial_parallel_bit_identical(self):
        kwargs = dict(
            seqs=(4,),
            d_heads=(4, 8),
            micro_batches=(2,),
            d_model=8,
            batch=8,
            seed=5,
        )
        serial = explore_attention(workers=0, **kwargs)
        parallel = explore_attention(workers=2, **kwargs)
        assert serial == parallel

    def test_empty_grid(self):
        assert explore_attention(seqs=(), workers=0) == []
