"""Tests for the memory-technology presets."""

import numpy as np
import pytest

from repro.devices.technologies import (
    TechnologyProfile,
    available_technologies,
    technology_preset,
)


class TestPresets:
    def test_all_four_technologies(self):
        assert available_technologies() == ["mram", "pcm", "reram", "sram"]

    def test_lookup_case_insensitive(self):
        assert technology_preset("ReRAM").name == "reram"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown technology"):
            technology_preset("dram2")

    def test_nvm_has_zero_leakage(self):
        """The paper's 'zero leakage' NVM advantage."""
        for name in ("reram", "pcm", "mram"):
            profile = technology_preset(name)
            assert profile.non_volatile
            assert profile.standby_power(10_000) == 0.0

    def test_sram_pays_leakage(self):
        sram = technology_preset("sram")
        assert not sram.non_volatile
        assert sram.standby_power(10_000) > 0

    def test_mram_is_binary(self):
        """TMR-limited read window: MRAM stores one bit per cell."""
        assert technology_preset("mram").levels.n_levels == 2

    def test_reram_pcm_multilevel(self):
        assert technology_preset("reram").levels.n_levels >= 8
        assert technology_preset("pcm").levels.n_levels >= 8

    def test_pcm_drifts_most(self):
        nus = {
            name: technology_preset(name).drift_nu
            for name in available_technologies()
        }
        assert nus["pcm"] == max(nus.values())
        assert nus["sram"] == 0.0

    def test_endurance_ordering(self):
        """ReRAM < PCM << MRAM/SRAM — the wear-out hierarchy."""
        e = {n: technology_preset(n).endurance for n in available_technologies()}
        assert e["reram"] < e["pcm"] < e["mram"] <= e["sram"]


class TestVariabilityIntegration:
    def test_variability_stack_built(self):
        stack = technology_preset("reram").variability()
        assert stack.write.sigma == 0.05

    def test_sram_writes_are_exact(self):
        stack = technology_preset("sram").variability()
        target = np.full(10, 1e-5)
        assert np.array_equal(stack.write.apply(target, rng=0), target)

    def test_preset_drives_crossbar(self):
        """A preset plugs straight into the crossbar layer."""
        from repro.crossbar.array import CrossbarArray, CrossbarConfig

        profile = technology_preset("pcm")
        array = CrossbarArray(
            CrossbarConfig(rows=8, cols=8, levels=profile.levels),
            variability=profile.variability(),
            rng=0,
        )
        targets = np.full((8, 8), profile.levels.g_max / 2)
        array.program(targets)
        # PCM write variation spreads the landing values.
        assert np.std(array.conductances()) > 0

    def test_standby_power_validation(self):
        with pytest.raises(ValueError):
            technology_preset("sram").standby_power(-1)
