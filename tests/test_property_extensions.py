"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.revamp import ReVAMPMachine, compile_mig_to_revamp
from repro.crossbar.write_schemes import (
    max_disturb_free_voltage,
    stress_profile,
)
from repro.devices.memristor import VTEAMMemristor, VTEAMParams
from repro.eda.boolean import TruthTable
from repro.eda.mig import mig_from_truth_table
from repro.eda.optimization import (
    aig_balance,
    permute_truth_table,
    sift_variable_order,
)
from repro.eda.aig import aig_from_truth_table
from repro.testing.ecc import HammingSecDed


def truth_tables(max_vars=4):
    return st.integers(1, max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.just(n), st.integers(0, (1 << (1 << n)) - 1)
        )
    )


class TestReVAMPProperties:
    @given(truth_tables(3))
    @settings(max_examples=20, deadline=None)
    def test_compiled_program_equivalent_to_mig(self, table):
        mig = mig_from_truth_table(table)
        program = compile_mig_to_revamp(mig)
        machine = ReVAMPMachine(cols=max(program.columns_used, 1))
        for m in range(1 << table.n_vars):
            inputs = [(m >> i) & 1 for i in range(table.n_vars)]
            assert machine.execute(program, inputs) == mig.simulate(inputs)

    @given(truth_tables(4))
    @settings(max_examples=20, deadline=None)
    def test_program_length_bounded(self, table):
        mig = mig_from_truth_table(table)
        program = compile_mig_to_revamp(mig)
        # 2 input-load instructions + at most 4 per node + 2 per output.
        bound = 2 + 4 * mig.n_nodes + 2 * len(mig.outputs)
        assert program.instruction_count <= bound


class TestBalanceProperties:
    @given(truth_tables(4))
    @settings(max_examples=25, deadline=None)
    def test_balance_preserves_function_and_depth(self, table):
        aig, out = aig_from_truth_table(table)
        aig.add_output(out)
        balanced = aig_balance(aig)
        assert balanced.to_truth_tables()[0] == table
        assert balanced.levels() <= aig.cleanup().levels()


class TestPermutationProperties:
    @given(
        st.integers(0, (1 << 16) - 1),
        st.permutations(list(range(4))),
    )
    @settings(max_examples=40)
    def test_permutation_preserves_weight(self, bits, order):
        table = TruthTable(4, bits)
        permuted = permute_truth_table(table, list(order))
        assert permuted.count_ones() == table.count_ones()

    @given(
        st.integers(0, (1 << 16) - 1),
        st.permutations(list(range(4))),
    )
    @settings(max_examples=30)
    def test_permutation_invertible(self, bits, order):
        table = TruthTable(4, bits)
        order = list(order)
        inverse = [order.index(i) for i in range(4)]
        round_trip = permute_truth_table(
            permute_truth_table(table, order), inverse
        )
        assert round_trip == table

    @given(st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_sifting_never_hurts(self, bits):
        table = TruthTable(3, bits)
        from repro.eda.optimization import bdd_size_for_order

        initial = bdd_size_for_order(table, [0, 1, 2])
        _, sifted = sift_variable_order(table)
        assert sifted <= initial


class TestWriteSchemeProperties:
    @given(st.floats(0.1, 5.0))
    def test_v3_margin_is_3_over_2_of_v2(self, threshold):
        params = VTEAMParams(v_off=threshold, v_on=-threshold)
        v2 = max_disturb_free_voltage(params, "v/2")
        v3 = max_disturb_free_voltage(params, "v/3")
        assert abs(v3 / v2 - 1.5) < 1e-9

    @given(st.floats(0.1, 10.0))
    def test_stress_never_exceeds_write_voltage(self, v_write):
        for scheme in ("v/2", "v/3"):
            profile = stress_profile(v_write, scheme)
            assert profile.half_selected < profile.selected
            assert profile.unselected <= profile.half_selected

    @given(st.integers(2, 64), st.integers(2, 64))
    def test_populations_partition_the_array(self, rows, cols):
        profile = stress_profile(2.0, "v/2")
        pops = profile.populations(rows, cols)
        assert sum(pops.values()) == rows * cols


class TestVteamProperties:
    @given(
        st.floats(0.0, 1.0),
        st.floats(-0.69, 0.69),
        st.integers(1, 200),
    )
    @settings(max_examples=40)
    def test_subthreshold_never_moves_state(self, x0, voltage, steps):
        dev = VTEAMMemristor(x0=x0)
        for _ in range(steps):
            dev.step(voltage, dt=1e-4)
        assert dev.state == x0

    @given(st.floats(0.0, 1.0), st.floats(0.71, 3.0))
    @settings(max_examples=30)
    def test_state_monotone_under_set(self, x0, voltage):
        dev = VTEAMMemristor(x0=x0)
        previous = dev.state
        for _ in range(50):
            dev.step(voltage, dt=1e-5)
            assert dev.state >= previous - 1e-12
            previous = dev.state


class TestEccWidthProperties:
    @given(st.integers(1, 120))
    @settings(max_examples=30, deadline=None)
    def test_code_construction_any_width(self, data_bits):
        code = HammingSecDed(data_bits)
        # Hamming bound: 2^r >= data + r + 1.
        r = code.parity_bits
        assert (1 << r) >= data_bits + r + 1
        assert code.codeword_bits == data_bits + r + 1
        data = np.zeros(data_bits, dtype=np.int8)
        decoded, status = code.decode(code.encode(data))
        assert status == "ok"
        assert np.array_equal(decoded, data)
