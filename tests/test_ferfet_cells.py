"""Tests for the Fig 11 programmable XOR/XNOR cell."""

import pytest

from repro.devices.ferfet import FeRFETParams
from repro.ferfet.cells import CellFunction, ProgrammableXorCell


class TestProgramming:
    def test_unprogrammed_cell_rejects_evaluation(self):
        with pytest.raises(RuntimeError, match="programmed"):
            ProgrammableXorCell().evaluate(0, 0)

    def test_xor_truth_table(self):
        cell = ProgrammableXorCell()
        cell.program(CellFunction.XOR)
        assert cell.truth_table() == {
            (0, 0): 0,
            (0, 1): 1,
            (1, 0): 1,
            (1, 1): 0,
        }

    def test_xnor_truth_table(self):
        cell = ProgrammableXorCell()
        cell.program(CellFunction.XNOR)
        assert cell.truth_table() == {
            (0, 0): 1,
            (0, 1): 0,
            (1, 0): 0,
            (1, 1): 1,
        }

    def test_reprogramming_switches_function(self):
        """The non-volatile reconfiguration the cell exists for."""
        cell = ProgrammableXorCell()
        cell.program(CellFunction.XOR)
        assert cell.verify()
        cell.program(CellFunction.XNOR)
        assert cell.function is CellFunction.XNOR
        assert cell.verify()

    def test_program_voltage_exceeds_data_levels(self):
        """Program rail sits at coercive level, 2-3x the logic swing —
        data operation cannot reprogram the cell."""
        cell = ProgrammableXorCell()
        assert cell.program_voltage > 2 * cell.params.operating_voltage


class TestDualRail:
    def test_outputs_complementary(self):
        cell = ProgrammableXorCell()
        cell.program(CellFunction.XOR)
        for a in (0, 1):
            for b in (0, 1):
                out, out_bar = cell.evaluate(a, b)
                assert out != out_bar

    def test_input_validation(self):
        cell = ProgrammableXorCell()
        cell.program(CellFunction.XOR)
        with pytest.raises(ValueError):
            cell.evaluate(2, 0)


class TestDataPathSeparation:
    def test_data_operation_does_not_disturb_program(self):
        """'the data paths for programming and operation are completely
        separated' — evaluating many inputs leaves the function intact."""
        cell = ProgrammableXorCell()
        cell.program(CellFunction.XNOR)
        for _ in range(50):
            for a in (0, 1):
                for b in (0, 1):
                    cell.evaluate(a, b)
        assert cell.verify()

    def test_four_transistor_cell(self):
        cell = ProgrammableXorCell()
        devices = [cell.t1, cell.t2, cell.t3, cell.t4]
        assert len(devices) == 4
