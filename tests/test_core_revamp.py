"""Tests for the ReVAMP VLIW in-memory machine ([35])."""

import numpy as np
import pytest

from repro.core.revamp import (
    ApplyInstr,
    Operand,
    OperandKind,
    ReVAMPMachine,
    ReVAMPProgram,
    ReadInstr,
    compile_mig_to_revamp,
)
from repro.eda.boolean import TruthTable
from repro.eda.mig import MIG, mig_from_truth_table


class TestOperands:
    def test_const_validation(self):
        with pytest.raises(ValueError):
            Operand.const(2)

    def test_factories(self):
        assert Operand.dir(3, negate=True).kind is OperandKind.DIR
        assert Operand.pi(1).kind is OperandKind.PI


class TestMachinePrimitives:
    def test_reset_idiom(self):
        """M3(S, 0, 0) = 0 regardless of S."""
        program = ReVAMPProgram(n_inputs=0)
        program.instructions = [
            ApplyInstr(0, Operand.const(1), ((0, Operand.const(0)),)),  # set
            ApplyInstr(0, Operand.const(0), ((0, Operand.const(1)),)),  # reset
        ]
        program.output_columns = [(0, False)]
        program.columns_used = 1
        machine = ReVAMPMachine(cols=1)
        assert machine.execute(program, []) == [0]

    def test_write_idiom(self):
        """M3(0, 1, v) = v: unconditional value write via the bitline."""
        for value in (0, 1):
            program = ReVAMPProgram(n_inputs=1)
            program.instructions = [
                ApplyInstr(
                    0, Operand.const(1), ((0, Operand.pi(0, negate=True)),)
                ),
            ]
            program.output_columns = [(0, False)]
            program.columns_used = 1
            machine = ReVAMPMachine(cols=1)
            assert machine.execute(program, [value]) == [value]

    def test_read_loads_dir(self):
        program = ReVAMPProgram(n_inputs=1)
        program.instructions = [
            # col0 <- pi0
            ApplyInstr(0, Operand.const(1), ((0, Operand.pi(0, True)),)),
            ReadInstr(0),
            # col1 <- DIR[0]
            ApplyInstr(0, Operand.const(1), ((1, Operand.dir(0, True)),)),
        ]
        program.output_columns = [(1, False)]
        program.columns_used = 2
        machine = ReVAMPMachine(cols=2)
        assert machine.execute(program, [1]) == [1]
        assert machine.execute(program, [0]) == [0]

    def test_vliw_parallel_columns(self):
        """One APPLY updates many columns simultaneously."""
        program = ReVAMPProgram(n_inputs=2)
        program.instructions = [
            ApplyInstr(
                0,
                Operand.const(1),
                ((0, Operand.pi(0, True)), (1, Operand.pi(1, True))),
            ),
        ]
        program.output_columns = [(0, False), (1, False)]
        program.columns_used = 2
        machine = ReVAMPMachine(cols=2)
        assert machine.execute(program, [1, 0]) == [1, 0]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ApplyInstr(
                0,
                Operand.const(1),
                ((0, Operand.const(0)), (0, Operand.const(1))),
            )

    def test_capacity_checked(self):
        program = ReVAMPProgram(n_inputs=0)
        program.columns_used = 8
        with pytest.raises(ValueError, match="columns"):
            ReVAMPMachine(cols=4).execute(program, [])


class TestCompiler:
    @pytest.mark.parametrize("n_vars", [1, 2, 3, 4])
    def test_random_functions_verified(self, n_vars, rng):
        for _ in range(6):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            mig = mig_from_truth_table(table)
            program = compile_mig_to_revamp(mig)
            machine = ReVAMPMachine(cols=max(program.columns_used, 1))
            for m in range(1 << n_vars):
                inputs = [(m >> i) & 1 for i in range(n_vars)]
                assert machine.execute(program, inputs) == mig.simulate(inputs)

    def test_majority_is_native(self):
        """One MIG node = one majority pulse (plus load/copy overhead)."""
        mig = MIG(3)
        a, b, c = (mig.input_lit(i) for i in range(3))
        mig.add_output(mig.maj(a, b, c))
        program = compile_mig_to_revamp(mig)
        # 2 input-load applies + per-node (1 read + 3 applies).
        assert program.read_count == 1
        assert program.apply_count == 5
        machine = ReVAMPMachine(cols=program.columns_used)
        for m in range(8):
            inputs = [(m >> i) & 1 for i in range(3)]
            assert machine.execute(program, inputs) == [
                int(sum(inputs) >= 2)
            ]

    def test_program_length_linear_in_nodes(self, rng):
        sizes = []
        for n_nodes_target in (2, 6):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            mig = mig_from_truth_table(table)
            program = compile_mig_to_revamp(mig)
            sizes.append((mig.n_nodes, program.instruction_count))
        for n_nodes, instructions in sizes:
            assert instructions <= 2 + 4 * n_nodes + 2

    def test_complemented_and_constant_outputs(self):
        mig = MIG(2)
        a, b = mig.input_lit(0), mig.input_lit(1)
        mig.add_output(mig.and_(a, b) ^ 1)   # NAND
        mig.add_output(1)                     # constant TRUE
        program = compile_mig_to_revamp(mig)
        machine = ReVAMPMachine(cols=program.columns_used)
        assert machine.execute(program, [1, 1]) == [0, 1]
        assert machine.execute(program, [0, 1]) == [1, 1]
