"""Tests for the cimflow command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("table1", "fig5", "yield", "fig7", "eda", "chip", "report"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "table1"])
        assert args.seed == 7

    def test_fig7_options(self):
        args = build_parser().parse_args(
            ["fig7", "--fault-rate", "0.2", "--inject-at", "200"]
        )
        assert args.fault_rate == 0.2
        assert args.inject_at == 200


class TestExecution:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CIM-A" in out and "COM-F" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "ADC share" in out

    def test_eda_runs(self, capsys):
        assert main(["eda", "parity8"]) == 0
        out = capsys.readouterr().out
        assert "majority" in out

    def test_eda_unknown_circuit(self, capsys):
        assert main(["eda", "nonexistent"]) == 2
        assert "unknown circuit" in capsys.readouterr().err

    def test_fig7_runs(self, capsys):
        assert main(["fig7", "--inject-at", "150"]) == 0
        out = capsys.readouterr().out
        assert "CUSUM detection cycle" in out

    def test_chip_runs(self, capsys):
        assert main(["chip"]) == 0
        out = capsys.readouterr().out
        assert "TOPS_per_W" in out

    def test_report_runs(self, capsys):
        assert main(["report", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "ADC share" in out
        assert "adc.conversions" in out

    def test_report_writes_json(self, tmp_path, capsys):
        from repro.utils.telemetry import RunReport

        path = tmp_path / "report.json"
        assert main(["report", "--batch", "4", "--json", str(path)]) == 0
        report = RunReport.from_json(path.read_text())
        assert report.energy_fractions()["adc"] > 0.65
        assert report.area_fractions()["adc"] > 0.90
