"""Tests for the cimflow command-line interface."""

import pytest

from repro.cli import SWEEP_COMMANDS, _COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "table1",
            "fig5",
            "yield",
            "fig7",
            "eda",
            "chip",
            "report",
            "pipeline",
            "ecc-advisor",
            "attention",
            "train",
            "serve",
        ):
            args = parser.parse_args([command])
            assert args.command == command
        args = parser.parse_args(["submit", "stats"])
        assert args.command == "submit"

    def test_every_command_has_a_handler(self):
        parser = build_parser()
        sub = next(
            a
            for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        assert set(sub.choices) == set(_COMMANDS)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "table1"])
        assert args.seed == 7

    def test_fig7_options(self):
        args = build_parser().parse_args(
            ["fig7", "--fault-rate", "0.2", "--inject-at", "200"]
        )
        assert args.fault_rate == 0.2
        assert args.inject_at == 200

    @pytest.mark.parametrize("command", SWEEP_COMMANDS)
    def test_sweep_commands_accept_seed_and_workers(self, command):
        """Every sweep-backed subcommand must plumb --seed and --workers
        into the deterministic sweep engine."""
        args = build_parser().parse_args(
            ["--seed", "9", command, "--workers", "2"]
        )
        assert args.seed == 9
        assert args.workers == 2

    def test_pipeline_options(self):
        args = build_parser().parse_args(
            [
                "pipeline",
                "--tiles",
                "8,16",
                "--batch",
                "32",
                "--micro-batch",
                "4",
                "--workload",
                "mlp",
            ]
        )
        assert args.tiles == "8,16"
        assert args.batch == 32
        assert args.micro_batch == 4
        assert args.workload == "mlp"

    def test_serve_options(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--window",
                "0.01",
                "--max-batch",
                "8",
                "--max-inflight",
                "4",
            ]
        )
        assert args.port == 0
        assert args.window == 0.01
        assert args.max_batch == 8
        assert args.max_inflight == 4

    def test_submit_options(self):
        args = build_parser().parse_args(
            ["submit", "sweep", "--params", "{}", "--json", "--port", "9999"]
        )
        assert args.kind == "sweep"
        assert args.params == "{}"
        assert args.json is True
        assert args.port == 9999
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "bogus"])

    def test_yield_model_choice(self):
        args = build_parser().parse_args(["yield", "--model", "cnn"])
        assert args.model == "cnn"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["yield", "--model", "rnn"])

    def test_ecc_advisor_options(self):
        args = build_parser().parse_args(
            [
                "ecc-advisor",
                "--codes",
                "secded,bch",
                "--yields",
                "0.999,0.99",
                "--data-bits",
                "16",
                "--mc-words",
                "256",
                "--trials",
                "1",
            ]
        )
        assert args.codes == "secded,bch"
        assert args.yields == "0.999,0.99"
        assert args.data_bits == 16
        assert args.mc_words == 256
        assert args.trials == 1

    def test_submit_accepts_ecc_kind(self):
        args = build_parser().parse_args(["submit", "ecc"])
        assert args.kind == "ecc"

    def test_submit_accepts_workload_kinds(self):
        for kind in ("attention", "train"):
            args = build_parser().parse_args(["submit", kind])
            assert args.kind == kind

    def test_attention_options(self):
        args = build_parser().parse_args(
            [
                "attention",
                "--seqs",
                "4,8",
                "--d-heads",
                "4",
                "--micro-batches",
                "2,4",
                "--d-model",
                "8",
                "--tiles",
                "12",
            ]
        )
        assert args.seqs == "4,8"
        assert args.d_heads == "4"
        assert args.micro_batches == "2,4"
        assert args.d_model == 8
        assert args.tiles == 12

    def test_train_options(self):
        args = build_parser().parse_args(
            [
                "train",
                "--lives",
                "8,1e6",
                "--drift-nus",
                "0.0",
                "--epochs",
                "3",
                "--backend",
                "scalar",
            ]
        )
        assert args.lives == "8,1e6"
        assert args.drift_nus == "0.0"
        assert args.epochs == 3
        assert args.backend == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--backend", "gpu"])


class TestExecution:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "CIM-A" in out and "COM-F" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "ADC share" in out

    def test_eda_runs(self, capsys):
        assert main(["eda", "parity8"]) == 0
        out = capsys.readouterr().out
        assert "majority" in out

    def test_eda_unknown_circuit(self, capsys):
        assert main(["eda", "nonexistent"]) == 2
        assert "unknown circuit" in capsys.readouterr().err

    def test_fig7_runs(self, capsys):
        assert main(["fig7", "--inject-at", "150"]) == 0
        out = capsys.readouterr().out
        assert "CUSUM detection cycle" in out

    def test_chip_runs(self, capsys):
        assert main(["chip"]) == 0
        out = capsys.readouterr().out
        assert "TOPS_per_W" in out

    def test_report_runs(self, capsys):
        assert main(["report", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "ADC share" in out
        assert "adc.conversions" in out
        assert "solver LU cache" in out

    def test_report_writes_json(self, tmp_path, capsys):
        from repro.utils.telemetry import RunReport

        path = tmp_path / "report.json"
        assert main(["report", "--batch", "4", "--json", str(path)]) == 0
        report = RunReport.from_json(path.read_text())
        assert report.energy_fractions()["adc"] > 0.65
        assert report.area_fractions()["adc"] > 0.90

    def test_pipeline_runs(self, capsys):
        assert (
            main(
                [
                    "pipeline",
                    "--tiles",
                    "4,8",
                    "--batch",
                    "8",
                    "--micro-batch",
                    "4",
                    "--workload",
                    "mlp",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Pipelined multi-tile DSE" in out
        assert "speedup" in out
        assert "best:" in out

    def test_pipeline_writes_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "dse.json"
        assert (
            main(
                [
                    "pipeline",
                    "--tiles",
                    "4",
                    "--batch",
                    "8",
                    "--micro-batch",
                    "4",
                    "--workload",
                    "mlp",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        rows = json.loads(path.read_text())
        assert rows and rows[0]["tiles"] == 4
        assert rows[0]["feasible"] is True

    def test_ecc_advisor_runs(self, capsys):
        assert (
            main(
                [
                    "ecc-advisor",
                    "--codes",
                    "secded,secdaec",
                    "--yields",
                    "0.999,0.99",
                    "--mc-words",
                    "256",
                    "--trials",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ECC co-design sweep" in out
        assert "Pareto front" in out
        assert "knee point:" in out
        assert "Recommended code per (scenario, yield)" in out
        assert "Parameter sensitivity" in out

    def test_ecc_advisor_writes_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "ecc.json"
        assert (
            main(
                [
                    "ecc-advisor",
                    "--codes",
                    "secded",
                    "--yields",
                    "0.999",
                    "--mc-words",
                    "128",
                    "--trials",
                    "1",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())
        assert payload["rows"] and payload["rows"][0]["code"] == "secded"
        assert payload["advice"]["knee"]["code"] == "secded"
        assert payload["advice"]["front"]

    def test_ecc_advisor_bad_code(self, capsys):
        assert main(["ecc-advisor", "--codes", "rs255"]) == 2
        assert "unknown ECC code" in capsys.readouterr().err

    def test_attention_runs(self, capsys):
        assert (
            main(
                [
                    "attention",
                    "--seqs",
                    "4",
                    "--d-heads",
                    "4",
                    "--micro-batches",
                    "2",
                    "--d-model",
                    "8",
                    "--batch",
                    "8",
                    "--workers",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Attention fork-join DSE" in out
        assert "speedup" in out
        assert "best:" in out

    def test_attention_writes_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "attention.json"
        assert (
            main(
                [
                    "attention",
                    "--seqs",
                    "4",
                    "--d-heads",
                    "4",
                    "--micro-batches",
                    "2",
                    "--d-model",
                    "8",
                    "--batch",
                    "8",
                    "--workers",
                    "0",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        rows = json.loads(path.read_text())
        assert rows and rows[0]["feasible"] is True
        assert rows[0]["bit_identical"] is True
        assert rows[0]["speedup"] > 1.0

    def test_train_runs(self, capsys):
        assert (
            main(
                [
                    "train",
                    "--lives",
                    "8",
                    "--drift-nus",
                    "0.01",
                    "--epochs",
                    "2",
                    "--workers",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "In-situ training" in out
        assert "dead_cells" in out
        assert "Accuracy / dead cells vs epoch" in out

    def test_train_writes_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "train.json"
        assert (
            main(
                [
                    "train",
                    "--lives",
                    "8",
                    "--drift-nus",
                    "0.0",
                    "--epochs",
                    "2",
                    "--workers",
                    "0",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        rows = json.loads(path.read_text())
        assert rows and rows[0]["feasible"] is True
        assert rows[0]["total_pulses"] > 0

    def test_submit_bad_params_json(self, capsys):
        assert main(["submit", "stats", "--params", "{bad", "--port", "1"]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_submit_without_server(self, capsys):
        assert main(["submit", "stats", "--port", "1", "--timeout", "2"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_report_pipeline_source(self, capsys):
        assert main(["report", "--source", "pipeline", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "Pipeline stage utilization" in out
        assert "pipeline.transfer.bytes" in out
        assert "tile utilization" in out
