"""Tests for march testing on physical crossbar arrays."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.devices.variability import (
    DriftModel,
    ReadNoiseModel,
    VariabilityStack,
    WriteVariationModel,
)
from repro.faults.injection import FaultInjector
from repro.faults.models import Fault, FaultType
from repro.testing.march import march_c_minus, march_c_star
from repro.testing.march_crossbar import CrossbarMarchTester


def _array(seed=0, n=8, variability=None):
    kwargs = {}
    if variability is not None:
        kwargs["variability"] = variability
    return CrossbarArray(CrossbarConfig(rows=n, cols=n), rng=seed, **kwargs)


class TestCleanDie:
    def test_clean_array_passes(self):
        result = CrossbarMarchTester(_array()).run()
        assert not result.fail
        assert result.failing_cells == set()

    def test_screen_passes_clean(self):
        assert CrossbarMarchTester(_array(seed=1)).screen()

    def test_operation_count(self):
        array = _array(n=4)
        result = CrossbarMarchTester(array, march_c_star()).run()
        assert result.operations == march_c_star().operations_per_cell * 16

    def test_moderate_write_variation_tolerated(self):
        """Healthy variation keeps bits on the right side of midpoint."""
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.05),
            read=ReadNoiseModel(sigma=0.01),
            drift=DriftModel(nu=0.0),
        )
        tester = CrossbarMarchTester(_array(seed=2, variability=stack))
        assert not tester.run().fail


class TestFaultyDie:
    def test_sa0_detected_and_located(self):
        array = _array(seed=3)
        FaultInjector(array, rng=4).inject_fault(
            Fault(FaultType.STUCK_AT_0, 2, 5)
        )
        result = CrossbarMarchTester(array).run()
        assert result.fail
        assert (2, 5) in result.failing_cells

    def test_sa1_detected(self):
        array = _array(seed=5)
        FaultInjector(array, rng=6).inject_fault(
            Fault(FaultType.STUCK_AT_1, 0, 0)
        )
        result = CrossbarMarchTester(array).run()
        assert result.fail
        assert (0, 0) in result.failing_cells

    def test_full_population_coverage(self):
        array = _array(seed=7, n=16)
        injector = FaultInjector(array, rng=8)
        fm = injector.inject_exact_count(10)
        result = CrossbarMarchTester(array).run()
        assert result.coverage(fm.cells()) == 1.0

    def test_broken_wordline_fails_whole_row(self):
        from repro.faults.defects import Defect, DefectType

        array = _array(seed=9)
        FaultInjector(array, rng=10).inject_defects(
            [Defect(DefectType.BROKEN_WORDLINE, 3, -1)]
        )
        result = CrossbarMarchTester(array).run()
        assert {(3, c) for c in range(8)}.issubset(result.failing_cells)

    def test_march_c_minus_also_works(self):
        array = _array(seed=11)
        FaultInjector(array, rng=12).inject_fault(
            Fault(FaultType.STUCK_AT_0, 1, 1)
        )
        result = CrossbarMarchTester(array, march_c_minus()).run()
        assert result.fail
        assert result.test_name == "March C-"


class TestScreenThenDeploy:
    def test_screen_separates_good_and_bad_dies(self):
        verdicts = []
        for seed in range(8):
            array = _array(seed=seed, n=8)
            if seed % 2 == 0:
                FaultInjector(array, rng=seed + 50).inject_exact_count(2)
            verdicts.append(CrossbarMarchTester(array).screen())
        # Even seeds (faulty) rejected, odd seeds (clean) accepted.
        assert verdicts == [False, True] * 4
