"""Shared fixtures for the cimflow test suite."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.devices.reram import ConductanceLevels


@pytest.fixture
def rng():
    """A deterministic generator for stochastic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_levels():
    """A 4-level conductance ladder used across crossbar tests."""
    return ConductanceLevels(g_min=1e-6, g_max=1e-4, n_levels=4)


@pytest.fixture
def small_array():
    """An ideal 8x8 crossbar preprogrammed to mid-range conductance."""
    array = CrossbarArray(CrossbarConfig(rows=8, cols=8), rng=7)
    array.program(np.full((8, 8), 5e-5))
    return array
