"""Tests for the serving layer's cross-request caches and config keying."""

import json
import math

import pytest

from repro.serve.cache import (
    ArtifactCache,
    ResultsCache,
    canonical_json,
    config_fingerprint,
)
from repro.utils import telemetry


class TestConfigFingerprint:
    def test_equal_configs_share_a_fingerprint(self):
        a = {"yields": [1.0, 0.9], "trials": 3, "nested": {"seed": 7}}
        b = {"nested": {"seed": 7}, "trials": 3, "yields": [1.0, 0.9]}
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_fingerprint_is_stable_text(self):
        fp = config_fingerprint({"x": 1})
        assert fp == config_fingerprint({"x": 1})
        assert isinstance(fp, str) and len(fp) == 32  # blake2b-16 hex

    def test_nested_float_difference_never_collides(self):
        """The keying property the results cache rests on: two configs
        that differ only in one nested float — by one ulp — must not
        share a cache entry."""
        base = 0.8
        bumped = math.nextafter(base, 1.0)
        assert base != bumped
        a = {"sweep": {"yields": [1.0, {"deep": [base]}], "trials": 2}}
        b = {"sweep": {"yields": [1.0, {"deep": [bumped]}], "trials": 2}}
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_float_and_int_of_same_value_may_differ(self):
        # json preserves 1 vs 1.0, so these are distinct configs —
        # normalization (not hashing) is responsible for coercion.
        assert config_fingerprint({"x": 1}) != config_fingerprint({"x": 1.0})

    def test_prefix_separates_kinds(self):
        cfg = {"x": 1}
        assert config_fingerprint(cfg, prefix="sweep") != config_fingerprint(
            cfg, prefix="dse"
        )

    def test_canonical_json_round_trips_floats_exactly(self):
        values = [0.1, 1e-300, math.nextafter(0.8, 1.0), 3.0000000000000004]
        decoded = json.loads(canonical_json(values))
        assert decoded == values  # bit-exact, not approximate


class TestArtifactCache:
    def test_get_or_create_hits_second_time(self):
        cache = ArtifactCache(capacity=4)
        calls = []
        v1, hit1 = cache.get_or_create("k", lambda: calls.append(1) or "v")
        v2, hit2 = cache.get_or_create("k", lambda: calls.append(2) or "w")
        assert (v1, hit1) == ("v", False)
        assert (v2, hit2) == ("v", True)
        assert calls == [1]
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order_and_counter(self):
        cache = ArtifactCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")        # refresh a; b is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_eviction_emits_telemetry(self):
        with telemetry.scoped() as scope:
            cache = ArtifactCache(capacity=1, name="probe_cache")
            cache.put("a", 1)
            cache.put("b", 2)
            cache.get("b")
            cache.get("zzz")
        counters = scope.snapshot()["counters"]
        assert counters["serve.probe_cache.evictions"] == 1
        assert counters["serve.probe_cache.hits"] == 1
        assert counters["serve.probe_cache.misses"] == 1

    def test_invalidate_tag_drops_only_tagged(self):
        cache = ArtifactCache(capacity=8)
        cache.put("m1", "model1", tags=("fp1",))
        cache.put("m1-lu", "factorization", tags=("fp1",))
        cache.put("m2", "model2", tags=("fp2",))
        dropped = cache.invalidate_tag("fp1")
        assert dropped == 2
        assert "m1" not in cache and "m1-lu" not in cache
        assert "m2" in cache
        assert cache.invalidations == 2

    def test_invalidate_single_key(self):
        cache = ArtifactCache(capacity=4)
        cache.put("k", 1)
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            ArtifactCache(capacity=0)


class TestResultsCache:
    def test_put_returns_canonical_decoded_copy(self):
        cache = ResultsCache()
        key = ResultsCache.key("sweep", {"trials": 2})
        payload = {"result": {"rows": [{"yield": 1.0, "accuracy": 0.975}]}}
        stored = cache.put(key, payload)
        assert stored == payload
        assert stored is not payload

    def test_warm_get_is_bit_identical_and_mutation_proof(self):
        cache = ResultsCache()
        key = ResultsCache.key("sweep", {"trials": 2})
        payload = {"result": {"rows": [0.1 + 0.2]}}  # 0.30000000000000004
        first = cache.put(key, payload)
        first["result"]["rows"][0] = 999.0  # caller mutates its copy
        second = cache.get(key)
        assert second == {"result": {"rows": [0.30000000000000004]}}
        assert json.dumps(second, sort_keys=True) == json.dumps(
            {"result": {"rows": [0.1 + 0.2]}}, sort_keys=True
        )

    def test_nested_float_configs_get_distinct_entries(self):
        cache = ResultsCache()
        base, bumped = 0.8, math.nextafter(0.8, 1.0)
        key_a = ResultsCache.key("sweep", {"yields": [{"deep": base}]})
        key_b = ResultsCache.key("sweep", {"yields": [{"deep": bumped}]})
        cache.put(key_a, {"result": "a"})
        assert cache.get(key_b) is None
        cache.put(key_b, {"result": "b"})
        assert cache.get(key_a) == {"result": "a"}
        assert cache.get(key_b) == {"result": "b"}

    def test_invalidate_tag_sweeps_model_results(self):
        cache = ResultsCache()
        k1 = ResultsCache.key("infer", {"x": [0.1]})
        k2 = ResultsCache.key("infer", {"x": [0.2]})
        k3 = ResultsCache.key("sweep", {"trials": 1})
        cache.put(k1, {"r": 1}, tags=("model-fp",))
        cache.put(k2, {"r": 2}, tags=("model-fp",))
        cache.put(k3, {"r": 3})
        assert cache.invalidate_tag("model-fp") == 2
        assert cache.get(k1) is None and cache.get(k2) is None
        assert cache.get(k3) == {"r": 3}
