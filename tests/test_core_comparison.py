"""Tests for the quantitative Table I comparison."""

import pytest

from repro.core.classification import ArchitectureClass
from repro.core.comparison import (
    ArchitectureComparator,
    ArchitectureMeasurement,
    WorkloadSpec,
    quantitative_table_i,
)


@pytest.fixture(scope="module")
def measurements():
    return ArchitectureComparator(rng=0).measure_all()


class TestMeasurements:
    def test_all_classes_measured(self, measurements):
        assert set(measurements) == set(ArchitectureClass)

    def test_positive_quantities(self, measurements):
        for m in measurements.values():
            assert m.energy > 0
            assert m.latency > 0
            assert m.data_moved_bytes > 0

    def test_cim_moves_only_vectors(self, measurements):
        """CIM classes move I/O vectors; COM classes ship the matrix."""
        w = WorkloadSpec()
        expected = (w.matrix_rows + w.matrix_cols) * w.batch
        assert measurements[ArchitectureClass.CIM_A].data_moved_bytes == expected
        assert (
            measurements[ArchitectureClass.COM_F].data_moved_bytes
            > 10 * expected
        )


class TestTableIConsistency:
    def test_orderings_match_paper(self, measurements):
        checks = ArchitectureComparator(rng=0).ordering_consistent_with_table_i(
            measurements
        )
        assert checks["cim_moves_less_data"]
        assert checks["bandwidth_order"]

    def test_com_f_worst_bandwidth(self, measurements):
        bw = {a: m.effective_bandwidth for a, m in measurements.items()}
        assert bw[ArchitectureClass.COM_F] == min(bw.values())

    def test_cim_a_best_bandwidth(self, measurements):
        bw = {a: m.effective_bandwidth for a, m in measurements.items()}
        assert bw[ArchitectureClass.CIM_A] == max(bw.values())

    def test_cim_p_costlier_than_cim_a(self, measurements):
        """Table I: complex functions are 'High cost' on CIM-P — the
        bit-serial VMM burns more time than one analog CIM-A pass."""
        assert (
            measurements[ArchitectureClass.CIM_P].latency
            > measurements[ArchitectureClass.CIM_A].latency
        )


class TestQuantitativeTable:
    def test_rows_carry_ratings_and_measurements(self):
        rows = quantitative_table_i(rng=0)
        assert len(rows) == 4
        for row in rows:
            assert "measured_bandwidth_GBps" in row
            assert "bandwidth_rating" in row
            assert row["measured_bandwidth_GBps"] > 0

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(matrix_rows=0)

    def test_measurement_row_format(self, measurements):
        row = measurements[ArchitectureClass.CIM_A].row()
        assert row["architecture"] == "CIM-A"
        assert row["energy_uJ"] > 0


class TestEnergyPerMac:
    def test_energy_per_mac_times_macs_equals_energy(self, measurements):
        """Regression: energy_per_mac must be energy divided by the
        workload's MAC count, for every architecture class."""
        for m in measurements.values():
            assert m.macs > 0
            assert m.energy_per_mac * m.macs == pytest.approx(
                m.energy, rel=1e-12
            )

    def test_energy_per_mac_zero_when_no_macs(self):
        m = ArchitectureMeasurement(
            architecture=ArchitectureClass.CIM_A,
            data_moved_bytes=0.0,
            energy=1.0,
            latency=1.0,
        )
        assert m.energy_per_mac == 0.0

    def test_row_carries_energy_per_mac(self, measurements):
        row = measurements[ArchitectureClass.COM_F].row()
        assert row["energy_per_mac_pJ"] > 0
