"""Tests for scouting-logic testing ([40])."""

import numpy as np
import pytest

from repro.core.cim_core import CIMCore, CIMCoreParams
from repro.testing.scouting_test import (
    ScoutingLogicTester,
    inject_reference_drift,
)


def _core(seed=0, cols=8):
    return CIMCore(CIMCoreParams(rows=4, logical_cols=cols // 2), rng=seed)


class TestHealthyDatapath:
    def test_clean_core_passes(self):
        core = _core()
        report = ScoutingLogicTester(core).run()
        assert not report.fault_detected
        assert report.patterns_applied == 4

    def test_patterns_cover_all_operand_pairs(self):
        core = _core()
        tester = ScoutingLogicTester(core)
        seen = set()
        for a, b in tester._patterns():
            for col in range(core.array.cols):
                seen.add((int(a[col]), int(b[col])))
        assert seen == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestCellFaults:
    def test_stuck_cell_detected(self):
        core = _core(seed=1)
        # Stick one cell of row 0 at LRS: its stored operand reads as 1.
        core.array.stick_cell(0, 3, core.params.levels.g_max)
        report = ScoutingLogicTester(core).run()
        assert report.fault_detected
        # The failing columns include the stuck column.
        failing_cols = {
            col for fails in report.op_failures.values() for _, col in fails
        }
        assert 3 in failing_cols

    def test_stuck_hrs_cell_detected(self):
        core = _core(seed=2)
        core.array.stick_cell(1, 5, core.params.levels.g_min)
        report = ScoutingLogicTester(core).run()
        assert report.fault_detected


class TestReferenceDrift:
    """The CIM-P-specific fault universe: sense thresholds drift."""

    def test_large_positive_drift_breaks_logic(self):
        core = _core(seed=3)
        inject_reference_drift(core, +0.6)
        report = ScoutingLogicTester(core).run()
        assert report.fault_detected

    def test_large_negative_drift_breaks_logic(self):
        core = _core(seed=4)
        inject_reference_drift(core, -0.6)
        report = ScoutingLogicTester(core).run()
        assert report.fault_detected

    def test_small_drift_within_margin_passes(self):
        """Noise margins absorb small offsets — the guard-band design
        point of Section II-E."""
        core = _core(seed=5)
        inject_reference_drift(core, 0.1)
        report = ScoutingLogicTester(core).run()
        assert not report.fault_detected

    def test_drift_direction_selects_failing_ops(self):
        """+drift lowers thresholds: AND starts accepting (1,0)/(0,1);
        OR keeps working (it only gets more permissive on inputs already
        above threshold)."""
        core = _core(seed=6)
        inject_reference_drift(core, +0.6)
        report = ScoutingLogicTester(core).run()
        assert "and" in report.failing_ops


class TestValidation:
    def test_identical_rows_rejected(self):
        with pytest.raises(ValueError):
            ScoutingLogicTester(_core(), rows=(1, 1))
