"""Tests for BDD-based formal equivalence checking."""

import pytest

from repro.eda.aig import AIG, aig_from_truth_table
from repro.eda.benchmarks import ripple_carry_adder
from repro.eda.boolean import TruthTable
from repro.eda.mig import mig_from_aig
from repro.eda.optimization import aig_balance
from repro.eda.verification import (
    check_aig_equivalence,
    check_aig_mig_equivalence,
)


class TestAigEquivalence:
    def test_identical_circuits_equivalent(self):
        a = ripple_carry_adder(3)
        b = ripple_carry_adder(3)
        result = check_aig_equivalence(a, b)
        assert result.equivalent
        assert result.counterexample is None
        assert result.outputs_checked == 4

    def test_balance_preserves_equivalence(self, rng):
        for _ in range(5):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            aig, out = aig_from_truth_table(table)
            aig.add_output(out)
            assert check_aig_equivalence(aig, aig_balance(aig)).equivalent

    def test_detects_difference_with_counterexample(self):
        a = AIG(2)
        a.add_output(a.and_(a.input_lit(0), a.input_lit(1)))
        b = AIG(2)
        b.add_output(b.or_(b.input_lit(0), b.input_lit(1)))
        result = check_aig_equivalence(a, b)
        assert not result.equivalent
        cex = result.counterexample
        assert cex is not None
        # The counterexample genuinely distinguishes AND from OR.
        assert a.simulate(cex) != b.simulate(cex)

    def test_structurally_different_same_function(self):
        """De Morgan restructuring: different graphs, same BDD."""
        a = AIG(2)
        a.add_output(a.and_(a.input_lit(0), a.input_lit(1)))
        b = AIG(2)
        nand_neg = b.and_(b.input_lit(0) ^ 1, b.input_lit(1) ^ 1)
        b.add_output(b.and_(b.input_lit(0), b.input_lit(1)))
        # b has extra unused structure but the same output function.
        assert check_aig_equivalence(a, b).equivalent

    def test_interface_mismatch_rejected(self):
        with pytest.raises(ValueError, match="input counts"):
            check_aig_equivalence(AIG(2), AIG(3))
        a, b = AIG(2), AIG(2)
        a.add_output(0)
        with pytest.raises(ValueError, match="output counts"):
            check_aig_equivalence(a, b)


class TestAigMigEquivalence:
    def test_conversion_equivalent(self, rng):
        for _ in range(5):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            aig, out = aig_from_truth_table(table)
            aig.add_output(out)
            aig = aig.cleanup()
            mig = mig_from_aig(aig)
            assert check_aig_mig_equivalence(aig, mig).equivalent

    def test_depth_rewrite_equivalent(self, rng):
        table = TruthTable(4, int(rng.integers(0, 1 << 16)))
        aig, out = aig_from_truth_table(table)
        aig.add_output(out)
        aig = aig.cleanup()
        mig = mig_from_aig(aig).depth_optimize()
        assert check_aig_mig_equivalence(aig, mig).equivalent

    def test_multi_output_adder(self):
        aig = ripple_carry_adder(4).cleanup()
        mig = mig_from_aig(aig)
        result = check_aig_mig_equivalence(aig, mig)
        assert result.equivalent
        assert result.outputs_checked == 5

    def test_detects_corruption(self):
        aig = AIG(2)
        aig.add_output(aig.and_(aig.input_lit(0), aig.input_lit(1)))
        from repro.eda.mig import MIG

        mig = MIG(2)
        mig.add_output(mig.or_(mig.input_lit(0), mig.input_lit(1)))
        result = check_aig_mig_equivalence(aig, mig)
        assert not result.equivalent
        assert result.counterexample is not None
