"""Tests for the march-test engine and March C* ([39])."""

import pytest

from repro.testing.march import (
    FaultyBitMemory,
    MarchElement,
    MarchOp,
    MarchOrder,
    MarchTest,
    MarchTestRunner,
    MemoryFault,
    MemoryFaultKind,
    march_c_minus,
    march_c_star,
    random_fault_population,
)


class TestMarchStructure:
    def test_march_c_star_layout(self):
        test = march_c_star()
        assert test.operations_per_cell == 10
        assert test.reads_per_cell == 6  # the six-bit signature
        assert len(test.elements) == 5

    def test_march_c_star_notation(self):
        text = str(march_c_star())
        assert "UP(r0,w1)" in text
        assert "UP(r1,r1,w0)" in text
        assert "DOWN(r0,w1)" in text

    def test_test_time_linear_in_cells(self):
        test = march_c_star()
        assert test.test_time(2000) == pytest.approx(2 * test.test_time(1000))

    def test_op_validation(self):
        with pytest.raises(ValueError):
            MarchOp("x", 0)
        with pytest.raises(ValueError):
            MarchOp("r", 2)

    def test_element_requires_ops(self):
        with pytest.raises(ValueError):
            MarchElement(MarchOrder.UP, ())


class TestFaultyBitMemory:
    def test_clean_read_write(self):
        mem = FaultyBitMemory(8)
        mem.write(3, 1)
        assert mem.read(3) == 1
        assert mem.read(2) == 0

    def test_sa0_behaviour(self):
        mem = FaultyBitMemory(4)
        mem.inject(MemoryFault(MemoryFaultKind.SA0, 1))
        mem.write(1, 1)
        assert mem.read(1) == 0

    def test_sa1_behaviour(self):
        mem = FaultyBitMemory(4)
        mem.inject(MemoryFault(MemoryFaultKind.SA1, 1))
        mem.write(1, 0)
        assert mem.read(1) == 1

    def test_transition_up_fault(self):
        mem = FaultyBitMemory(4)
        mem.inject(MemoryFault(MemoryFaultKind.TF_UP, 2))
        mem.write(2, 1)   # fails: 0 -> 1 broken
        assert mem.read(2) == 0

    def test_transition_down_fault(self):
        mem = FaultyBitMemory(4)
        mem.inject(MemoryFault(MemoryFaultKind.TF_DOWN, 2))
        # Must get to 1 first: TF_DOWN lets 0->1 pass.
        mem.write(2, 1)
        mem.write(2, 0)   # fails: 1 -> 0 broken
        assert mem.read(2) == 1

    def test_coupling_fault(self):
        mem = FaultyBitMemory(4)
        mem.inject(MemoryFault(MemoryFaultKind.CF_ST_1, 2, aggressor=0))
        mem.write(2, 0)
        mem.write(0, 1)   # aggressor write forces victim to 1
        assert mem.read(2) == 1

    def test_read1_disturb(self):
        """Read returns the stored 1 once, then the cell has flipped —
        the ReRAM-specific fault March C*'s double read targets."""
        mem = FaultyBitMemory(4)
        mem.inject(MemoryFault(MemoryFaultKind.READ1_DISTURB, 1))
        mem.write(1, 1)
        assert mem.read(1) == 1
        assert mem.read(1) == 0

    def test_adf_no_access(self):
        mem = FaultyBitMemory(4)
        mem.inject(MemoryFault(MemoryFaultKind.ADF_NO_ACCESS, 3))
        mem.write(3, 1)
        assert mem.read(3) == 0

    def test_adf_wrong_row(self):
        mem = FaultyBitMemory(4)
        mem.inject(MemoryFault(MemoryFaultKind.ADF_WRONG_ROW, 0, alias=2))
        mem.write(0, 1)
        # The write landed on the alias.
        mem2_value = mem.read(2)
        assert mem2_value == 1

    def test_coupling_needs_aggressor(self):
        mem = FaultyBitMemory(4)
        with pytest.raises(ValueError, match="aggressor"):
            mem.inject(MemoryFault(MemoryFaultKind.CF_ST_0, 1))


class TestMarchCoverage:
    """March C* detects every fault model the paper lists for it."""

    @pytest.mark.parametrize(
        "fault",
        [
            MemoryFault(MemoryFaultKind.SA0, 5),
            MemoryFault(MemoryFaultKind.SA1, 5),
            MemoryFault(MemoryFaultKind.TF_UP, 5),
            MemoryFault(MemoryFaultKind.TF_DOWN, 5),
            MemoryFault(MemoryFaultKind.CF_ST_0, 5, aggressor=9),
            MemoryFault(MemoryFaultKind.CF_ST_1, 5, aggressor=2),
            MemoryFault(MemoryFaultKind.CF_ST_1, 2, aggressor=5),
            MemoryFault(MemoryFaultKind.READ1_DISTURB, 5),
            MemoryFault(MemoryFaultKind.ADF_NO_ACCESS, 5),
            MemoryFault(MemoryFaultKind.ADF_WRONG_ROW, 5, alias=11),
        ],
        ids=lambda f: f.kind.value,
    )
    def test_march_c_star_detects(self, fault):
        memory = FaultyBitMemory(16)
        memory.inject(fault)
        result = MarchTestRunner(march_c_star()).run(memory)
        assert result.fail

    def test_clean_memory_passes(self):
        result = MarchTestRunner(march_c_star()).run(FaultyBitMemory(32))
        assert not result.fail

    def test_full_population_coverage(self):
        runner = MarchTestRunner(march_c_star())
        faults = random_fault_population(64, 60, rng=0)
        assert runner.coverage(64, faults) == 1.0

    def test_march_c_minus_also_complete_on_saf_tf(self):
        runner = MarchTestRunner(march_c_minus())
        faults = random_fault_population(
            32,
            30,
            kinds=[
                MemoryFaultKind.SA0,
                MemoryFaultKind.SA1,
                MemoryFaultKind.TF_UP,
                MemoryFaultKind.TF_DOWN,
            ],
            rng=1,
        )
        assert runner.coverage(32, faults) == 1.0

    def test_localization_points_at_faulty_cell(self):
        memory = FaultyBitMemory(16)
        memory.inject(MemoryFault(MemoryFaultKind.SA0, 7))
        result = MarchTestRunner(march_c_star()).run(memory)
        assert 7 in result.failing_addresses

    def test_signatures_have_six_bits(self):
        result = MarchTestRunner(march_c_star()).run(FaultyBitMemory(8))
        assert all(len(sig) == 6 for sig in result.signatures.values())

    def test_faulty_signature_differs_from_clean(self):
        clean = MarchTestRunner(march_c_star()).run(FaultyBitMemory(8))
        faulty_mem = FaultyBitMemory(8)
        faulty_mem.inject(MemoryFault(MemoryFaultKind.SA1, 3))
        faulty = MarchTestRunner(march_c_star()).run(faulty_mem)
        assert faulty.signatures[3] != clean.signatures[3]
