"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_shape,
)


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_non_negative_rejects(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_non_negative("x", -1)

    def test_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.01)
        with pytest.raises(ValueError):
            check_probability("p", -0.01)

    def test_in_range(self):
        assert check_in_range("v", 0.5, 0, 1) == 0.5
        with pytest.raises(ValueError, match=r"v must be in \[0, 1\]"):
            check_in_range("v", 2, 0, 1)


class TestCheckShape:
    def test_exact_shape(self):
        a = np.zeros((3, 4))
        assert check_shape("a", a, (3, 4)) is not None

    def test_wildcard_axis(self):
        a = np.zeros((3, 4))
        check_shape("a", a, (-1, 4))

    def test_wrong_rank(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_shape("a", np.zeros(3), (3, 1))

    def test_wrong_size(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_shape("a", np.zeros((3, 5)), (3, 4))
