"""Tests for the pipeline DSE driver (repro.pipeline.explore)."""

import numpy as np
import pytest

from repro.pipeline import explore_pipeline
from repro.pipeline.explore import reference_conv_graph, reference_graph


class TestReferenceGraphs:
    def test_mlp_graph_is_deterministic(self):
        a = reference_graph(model_seed=9)
        b = reference_graph(model_seed=9)
        for na, nb in zip(a, b):
            assert np.array_equal(na.weights, nb.weights)

    def test_conv_graph_shape(self):
        g = reference_conv_graph()
        assert [n.kind for n in g] == ["conv2d", "dense", "dense"]
        assert g.nodes[0].patches_per_sample == 36

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError, match="layer sizes"):
            reference_graph(layer_sizes=(8,))


class TestExplore:
    def test_grid_rows_in_point_major_order(self):
        rows = explore_pipeline(
            tile_counts=(8, 16),
            duplication_modes=("none", "auto"),
            batch_sizes=(8,),
            micro_batch=4,
        )
        assert [(r["tiles"], r["duplication"]) for r in rows] == [
            (8, "none"),
            (8, "auto"),
            (16, "none"),
            (16, "auto"),
        ]

    def test_infeasible_points_reported_not_raised(self):
        rows = explore_pipeline(
            tile_counts=(1,), duplication_modes=("none",), batch_sizes=(8,)
        )
        assert len(rows) == 1
        assert rows[0]["feasible"] is False
        assert "tiles" in rows[0]["reason"]

    def test_duplication_improves_conv_throughput(self):
        rows = explore_pipeline(
            tile_counts=(16,),
            duplication_modes=("none", "auto"),
            batch_sizes=(16,),
            micro_batch=2,
        )
        none, auto = rows
        assert auto["throughput"] > none["throughput"]

    def test_mlp_workload_supported(self):
        rows = explore_pipeline(
            tile_counts=(4,),
            duplication_modes=("none",),
            batch_sizes=(8,),
            workload="mlp",
            micro_batch=4,
        )
        assert rows[0]["feasible"] is True
        assert rows[0]["speedup"] > 1

    def test_bad_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            explore_pipeline(
                tile_counts=(4,),
                duplication_modes=("none",),
                batch_sizes=(4,),
                workload="transformer",
            )

    def test_serial_and_parallel_grids_identical(self):
        """The sweep-engine contract: same seed, any worker count, the
        exploration rows are bit-identical."""
        kwargs = dict(
            tile_counts=(8, 16),
            duplication_modes=("none", "auto"),
            batch_sizes=(8,),
            micro_batch=4,
            seed=123,
        )
        serial = explore_pipeline(workers=0, **kwargs)
        parallel = explore_pipeline(workers=2, **kwargs)
        assert serial == parallel

    def test_empty_grid(self):
        assert explore_pipeline(tile_counts=()) == []
