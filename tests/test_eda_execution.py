"""Tests for MAGIC execution on physical crossbar arrays."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.eda.aig import aig_from_truth_table
from repro.eda.boolean import TruthTable
from repro.eda.execution import CrossbarLogicExecutor, array_for_program
from repro.eda.magic_mapping import (
    map_netlist_to_magic_crossbar,
    map_netlist_to_magic_single_row,
)
from repro.eda.netlist import nor_netlist_from_aig


def _program_for(table, single_row=False):
    aig, out = aig_from_truth_table(table)
    aig.add_output(out)
    netlist = nor_netlist_from_aig(aig.cleanup())
    if single_row:
        return map_netlist_to_magic_single_row(netlist)
    return map_netlist_to_magic_crossbar(netlist)


class TestHealthyExecution:
    @pytest.mark.parametrize("n_vars", [2, 3, 4])
    def test_crossbar_matches_ideal(self, n_vars, rng):
        for _ in range(4):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            program = _program_for(table)
            array = array_for_program(program, rng=0)
            executor = CrossbarLogicExecutor(array, program)
            for m in range(1 << n_vars):
                inputs = [(m >> i) & 1 for i in range(n_vars)]
                assert executor.matches_ideal(inputs)

    def test_single_row_program_executes(self, rng):
        table = TruthTable.from_function(3, lambda a, b, c: (a ^ b) | c)
        program = _program_for(table, single_row=True)
        array = array_for_program(program, rng=1)
        executor = CrossbarLogicExecutor(array, program)
        for m in range(8):
            inputs = [(m >> i) & 1 for i in range(3)]
            assert executor.execute(inputs).outputs == [
                table.evaluate(inputs)
            ]

    def test_report_counts(self):
        table = TruthTable.from_function(2, lambda a, b: a & b)
        program = _program_for(table)
        array = array_for_program(program, rng=2)
        report = CrossbarLogicExecutor(array, program).execute([1, 1])
        assert report.gate_evaluations > 0
        assert report.cell_writes > report.gate_evaluations

    def test_write_endurance_accounted(self):
        """Running logic in memory consumes write endurance — the CIM-A
        wear concern."""
        table = TruthTable.from_function(2, lambda a, b: a ^ b)
        program = _program_for(table)
        array = array_for_program(program, rng=3)
        executor = CrossbarLogicExecutor(array, program)
        executor.execute([1, 0])
        assert array.write_counts().sum() > 0


class TestFaultyExecution:
    def test_stuck_cell_corrupts_logic(self):
        """A stuck output device makes some input vector compute wrong —
        the reason logic-in-memory needs manufacturing test."""
        table = TruthTable.from_function(2, lambda a, b: a & b)
        program = _program_for(table)
        array = array_for_program(program, rng=4)
        # Stick the final output device at HRS (logic 0).
        out_device = program.output_devices[0]
        r, c = program.placement[out_device]
        array.stick_cell(r, c, array.config.levels.g_min)
        executor = CrossbarLogicExecutor(array, program)
        wrong = sum(
            executor.execute([a, b]).outputs != [table.evaluate([a, b])]
            for a in (0, 1)
            for b in (0, 1)
        )
        assert wrong > 0

    def test_screen_then_deploy(self):
        """March-style screening predicts functional failure: arrays that
        fail a write/read check also miscompute; clean arrays compute."""
        table = TruthTable.from_function(3, lambda a, b, c: (a & b) ^ c)
        program = _program_for(table)

        def screen(array):
            """Write/read every used cell at both levels (1N march-ish)."""
            levels = array.config.levels
            for device, (r, c) in program.placement.items():
                for target, expected in (
                    (levels.g_max, 1),
                    (levels.g_min, 0),
                ):
                    array.write_cell(r, c, target)
                    midpoint = 0.5 * (levels.g_min + levels.g_max)
                    got = int(array.conductances()[r, c] >= midpoint)
                    if got != expected:
                        return False
            return True

        # A clean die passes the screen and computes correctly.
        clean = array_for_program(program, rng=5)
        assert screen(clean)
        executor = CrossbarLogicExecutor(clean, program)
        assert all(
            executor.matches_ideal([(m >> i) & 1 for i in range(3)])
            for m in range(8)
        )

        # A faulty die fails the screen.
        faulty = array_for_program(program, rng=6)
        some_device = program.input_devices[0]
        r, c = program.placement[some_device]
        faulty.stick_cell(r, c, faulty.config.levels.g_max)
        assert not screen(faulty)


class TestValidation:
    def test_placement_bounds_checked(self):
        table = TruthTable.from_function(2, lambda a, b: a | b)
        program = _program_for(table)
        tiny = CrossbarArray(CrossbarConfig(rows=1, cols=1), rng=0)
        with pytest.raises(ValueError, match="outside"):
            CrossbarLogicExecutor(tiny, program)

    def test_input_length_checked(self):
        table = TruthTable.from_function(2, lambda a, b: a | b)
        program = _program_for(table)
        array = array_for_program(program, rng=7)
        with pytest.raises(ValueError, match="expected 2 inputs"):
            CrossbarLogicExecutor(array, program).execute([1])
