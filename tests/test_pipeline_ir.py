"""Tests for the layer-graph IR (repro.pipeline.ir)."""

import numpy as np
import pytest

from repro.apps.cnn import SimpleCNN, CrossbarCNN
from repro.apps.nn import MLP, CrossbarMLP
from repro.pipeline import (
    GRAPH_INPUT,
    GraphBuilder,
    LayerGraph,
    LayerNode,
    trace_cnn,
    trace_mlp,
)
from repro.pipeline.ir import _apply_activation


class TestLayerNode:
    def test_dense_geometry(self, rng):
        node = LayerNode("fc", "dense", rng.uniform(-1, 1, (16, 8)), np.zeros(8))
        assert node.in_features == 16
        assert node.out_features == 8
        assert node.patches_per_sample == 1
        assert node.macs_per_sample == 16 * 8

    def test_conv_geometry(self, rng):
        node = LayerNode(
            "conv",
            "conv2d",
            rng.uniform(-1, 1, (9, 4)),
            np.zeros(4),
            image_size=8,
            kernel=3,
        )
        assert node.conv_out_edge == 6
        assert node.patches_per_sample == 36
        assert node.in_features == 64
        assert node.out_features == 36 * 4

    def test_reference_forward_dense(self, rng):
        w, b = rng.uniform(-1, 1, (6, 4)), rng.uniform(-1, 1, 4)
        node = LayerNode("fc", "dense", w, b, activation="relu")
        h = rng.uniform(-1, 1, (5, 6))
        assert np.allclose(node.reference_forward(h), np.maximum(h @ w + b, 0))

    def test_bad_kind_rejected(self, rng):
        with pytest.raises(ValueError, match="kind"):
            LayerNode("x", "pool", rng.uniform(-1, 1, (4, 4)), np.zeros(4))

    def test_bad_bias_shape_rejected(self, rng):
        with pytest.raises(ValueError, match="bias"):
            LayerNode("x", "dense", rng.uniform(-1, 1, (4, 4)), np.zeros(3))

    def test_conv_needs_square_rows(self, rng):
        with pytest.raises(ValueError, match="rows"):
            LayerNode(
                "x",
                "conv2d",
                rng.uniform(-1, 1, (8, 4)),
                np.zeros(4),
                image_size=8,
                kernel=3,
            )


class TestLayerGraph:
    def test_shape_incompatible_edge_rejected(self, rng):
        a = LayerNode("a", "dense", rng.uniform(-1, 1, (8, 4)), np.zeros(4))
        b = LayerNode("b", "dense", rng.uniform(-1, 1, (5, 2)), np.zeros(2))
        with pytest.raises(ValueError, match="shape"):
            LayerGraph([a, b])

    def test_duplicate_names_rejected(self, rng):
        a = LayerNode("a", "dense", rng.uniform(-1, 1, (8, 4)), np.zeros(4))
        b = LayerNode("a", "dense", rng.uniform(-1, 1, (4, 2)), np.zeros(2))
        with pytest.raises(ValueError, match="duplicate"):
            LayerGraph([a, b])

    def test_mid_graph_conv_shape_checked(self, rng):
        # The historical "multi-conv chains are not supported yet" dead
        # end is gone: a mis-sized dense -> conv edge now gets a real
        # shape diagnostic...
        a = LayerNode("a", "dense", rng.uniform(-1, 1, (8, 9)), np.zeros(9))
        conv = LayerNode(
            "c",
            "conv2d",
            rng.uniform(-1, 1, (9, 4)),
            np.zeros(4),
            image_size=8,
            kernel=3,
        )
        with pytest.raises(ValueError, match="shape-incompatible"):
            LayerGraph([a, conv])

    def test_mid_graph_conv_supported(self, rng):
        # ...and a correctly-sized one builds and evaluates: the flat
        # (batch, 64) payload reshapes to 8x8 images for the conv stage.
        a = LayerNode("a", "dense", rng.uniform(-1, 1, (8, 64)), np.zeros(64))
        conv = LayerNode(
            "c",
            "conv2d",
            rng.uniform(-1, 1, (9, 4)),
            np.zeros(4),
            image_size=8,
            kernel=3,
        )
        g = LayerGraph([a, conv])
        x = rng.uniform(0, 1, (3, 8))
        out = g.reference_forward(x)
        hidden = np.maximum(x @ a.weights, 0.0)
        expected = conv.reference_forward(hidden.reshape(3, 8, 8))
        assert np.array_equal(out, expected)

    def test_cycle_rejected(self, rng):
        a = LayerNode(
            "a", "dense", rng.uniform(-1, 1, (4, 4)), np.zeros(4),
            inputs=("b",),
        )
        b = LayerNode(
            "b", "dense", rng.uniform(-1, 1, (4, 4)), np.zeros(4),
            inputs=("a",),
        )
        with pytest.raises(ValueError, match="cycle"):
            LayerGraph([a, b])

    def test_dangling_edge_rejected(self, rng):
        a = LayerNode(
            "a", "dense", rng.uniform(-1, 1, (4, 4)), np.zeros(4),
            inputs=("ghost",),
        )
        with pytest.raises(ValueError, match="dangling"):
            LayerGraph([a])

    def test_multiple_sinks_rejected(self, rng):
        a = LayerNode(
            "a", "dense", rng.uniform(-1, 1, (4, 4)), np.zeros(4),
            inputs=(GRAPH_INPUT,),
        )
        b = LayerNode(
            "b", "dense", rng.uniform(-1, 1, (4, 2)), np.zeros(2),
            inputs=(GRAPH_INPUT,),
        )
        with pytest.raises(ValueError, match="sink"):
            LayerGraph([a, b])

    def test_matmul_arity_enforced(self, rng):
        fork = LayerNode(
            "fork", "dense", rng.uniform(-1, 1, (4, 8)), np.zeros(8),
            inputs=(GRAPH_INPUT,), tokens=2,
        )
        mm = LayerNode(
            "mm", "matmul", np.zeros((4, 2)), np.zeros(2),
            inputs=("fork",), tokens=2,
        )
        with pytest.raises(ValueError, match="input"):
            LayerGraph([fork, mm])

    def test_fork_join_reference_forward(self, rng):
        """A hand-built fork-join graph evaluates left @ right.T."""
        left = LayerNode(
            "left", "dense", rng.uniform(-1, 1, (3, 4)), np.zeros(4),
            inputs=(GRAPH_INPUT,), tokens=2, activation="none",
        )
        right = LayerNode(
            "right", "dense", rng.uniform(-1, 1, (3, 4)), np.zeros(4),
            inputs=(GRAPH_INPUT,), tokens=2, activation="none",
        )
        join = LayerNode(
            "join", "matmul", np.zeros((4, 2)), np.zeros(2),
            inputs=("left", "right"), tokens=2, transpose_right=True,
            activation="none",
        )
        g = LayerGraph([left, right, join])
        x = rng.uniform(0, 1, (5, 6))
        toks = x.reshape(5, 2, 3)
        l = toks @ left.weights
        r = toks @ right.weights
        expected = (l @ r.transpose(0, 2, 1)).reshape(5, -1)
        assert np.allclose(g.reference_forward(x), expected)

    def test_edges_and_validate_input(self, rng):
        g = (
            GraphBuilder()
            .dense(rng.uniform(-1, 1, (8, 4)))
            .dense(rng.uniform(-1, 1, (4, 2)), activation="none")
            .build()
        )
        assert g.edges() == [("dense0", "dense1")]
        with pytest.raises(ValueError, match="input"):
            g.validate_input(np.zeros((3, 7)))


class TestSoftmaxActivation:
    def test_rows_sum_to_one(self, rng):
        z = rng.normal(size=(6, 5))
        p = _apply_activation(z, "softmax")
        assert np.allclose(p.sum(axis=-1), 1.0)
        assert np.all(p > 0)

    def test_large_logits_do_not_overflow(self):
        """The shifted-exp form must survive logits that overflow a naive
        exp(z): no inf/nan, and the distribution is still correct."""
        z = np.array([[1000.0, 1000.0, 0.0], [-1000.0, 0.0, 1000.0]])
        with np.errstate(over="raise", invalid="raise"):
            p = _apply_activation(z, "softmax")
        assert np.all(np.isfinite(p))
        assert np.allclose(p.sum(axis=-1), 1.0)
        assert p[0, 0] == pytest.approx(0.5)
        assert p[1, 2] == pytest.approx(1.0)

    def test_uniform_logits_give_uniform_distribution(self):
        p = _apply_activation(np.full((2, 4), 7.0e2), "softmax")
        assert np.allclose(p, 0.25)

    def test_shift_invariance(self, rng):
        z = rng.normal(size=(3, 6))
        assert np.allclose(
            _apply_activation(z, "softmax"),
            _apply_activation(z + 123.0, "softmax"),
        )

    def test_last_axis_on_3d(self, rng):
        z = rng.normal(size=(2, 3, 4))
        p = _apply_activation(z, "softmax")
        assert np.allclose(p.sum(axis=-1), 1.0)


class TestTraceMLP:
    def test_reference_matches_mlp_logits(self, rng):
        mlp = MLP((12, 10, 4), rng=rng)
        calib = rng.uniform(0, 1, (30, 12))
        graph = trace_mlp(mlp, calib)
        x = rng.uniform(0, 1, (9, 12))
        # The MLP's forward applies softmax; compare pre-softmax logits.
        h = x
        for k, (w, b) in enumerate(zip(mlp.weights, mlp.biases)):
            z = h @ w + b
            h = z if k == mlp.n_layers - 1 else np.maximum(z, 0.0)
        assert np.allclose(graph.reference_forward(x), h)

    def test_input_scales_match_crossbar_mlp(self, rng):
        mlp = MLP((12, 10, 4), rng=rng)
        calib = rng.uniform(0, 1, (30, 12))
        graph = trace_mlp(mlp, calib)
        xb = CrossbarMLP(mlp, calib, rng=0)
        assert [n.input_scale for n in graph] == pytest.approx(
            [layer.input_scale for layer in xb.layers]
        )

    def test_calibration_shape_checked(self, rng):
        mlp = MLP((12, 10, 4), rng=rng)
        with pytest.raises(ValueError, match="calibration"):
            trace_mlp(mlp, rng.uniform(0, 1, (30, 11)))


class TestTraceCNN:
    def test_reference_matches_cnn_pre_softmax(self, rng):
        cnn = SimpleCNN(rng=rng)
        calib = rng.uniform(0, 1, (20, 8, 8))
        graph = trace_cnn(cnn, calib)
        imgs = rng.uniform(0, 1, (6, 8, 8))
        _, pre = cnn._conv_forward(imgs)
        hidden = np.maximum(pre, 0.0).reshape(6, -1)
        logits = hidden @ cnn.dense_w + cnn.dense_b
        assert np.allclose(graph.reference_forward(imgs), logits)

    def test_graph_shape(self, rng):
        cnn = SimpleCNN(rng=rng)
        graph = trace_cnn(cnn, rng.uniform(0, 1, (20, 8, 8)))
        assert graph.input_is_image
        assert [n.kind for n in graph] == ["conv2d", "dense"]
        assert graph.nodes[0].input_scale == 1.0
