"""Tests for the layer-graph IR (repro.pipeline.ir)."""

import numpy as np
import pytest

from repro.apps.cnn import SimpleCNN, CrossbarCNN
from repro.apps.nn import MLP, CrossbarMLP
from repro.pipeline import GraphBuilder, LayerGraph, LayerNode, trace_cnn, trace_mlp


class TestLayerNode:
    def test_dense_geometry(self, rng):
        node = LayerNode("fc", "dense", rng.uniform(-1, 1, (16, 8)), np.zeros(8))
        assert node.in_features == 16
        assert node.out_features == 8
        assert node.patches_per_sample == 1
        assert node.macs_per_sample == 16 * 8

    def test_conv_geometry(self, rng):
        node = LayerNode(
            "conv",
            "conv2d",
            rng.uniform(-1, 1, (9, 4)),
            np.zeros(4),
            image_size=8,
            kernel=3,
        )
        assert node.conv_out_edge == 6
        assert node.patches_per_sample == 36
        assert node.in_features == 64
        assert node.out_features == 36 * 4

    def test_reference_forward_dense(self, rng):
        w, b = rng.uniform(-1, 1, (6, 4)), rng.uniform(-1, 1, 4)
        node = LayerNode("fc", "dense", w, b, activation="relu")
        h = rng.uniform(-1, 1, (5, 6))
        assert np.allclose(node.reference_forward(h), np.maximum(h @ w + b, 0))

    def test_bad_kind_rejected(self, rng):
        with pytest.raises(ValueError, match="kind"):
            LayerNode("x", "pool", rng.uniform(-1, 1, (4, 4)), np.zeros(4))

    def test_bad_bias_shape_rejected(self, rng):
        with pytest.raises(ValueError, match="bias"):
            LayerNode("x", "dense", rng.uniform(-1, 1, (4, 4)), np.zeros(3))

    def test_conv_needs_square_rows(self, rng):
        with pytest.raises(ValueError, match="rows"):
            LayerNode(
                "x",
                "conv2d",
                rng.uniform(-1, 1, (8, 4)),
                np.zeros(4),
                image_size=8,
                kernel=3,
            )


class TestLayerGraph:
    def test_shape_incompatible_edge_rejected(self, rng):
        a = LayerNode("a", "dense", rng.uniform(-1, 1, (8, 4)), np.zeros(4))
        b = LayerNode("b", "dense", rng.uniform(-1, 1, (5, 2)), np.zeros(2))
        with pytest.raises(ValueError, match="shape"):
            LayerGraph([a, b])

    def test_duplicate_names_rejected(self, rng):
        a = LayerNode("a", "dense", rng.uniform(-1, 1, (8, 4)), np.zeros(4))
        b = LayerNode("a", "dense", rng.uniform(-1, 1, (4, 2)), np.zeros(2))
        with pytest.raises(ValueError, match="duplicate"):
            LayerGraph([a, b])

    def test_conv_must_be_entry(self, rng):
        a = LayerNode("a", "dense", rng.uniform(-1, 1, (8, 9)), np.zeros(9))
        conv = LayerNode(
            "c",
            "conv2d",
            rng.uniform(-1, 1, (9, 4)),
            np.zeros(4),
            image_size=8,
            kernel=3,
        )
        with pytest.raises(ValueError, match="entry"):
            LayerGraph([a, conv])

    def test_edges_and_validate_input(self, rng):
        g = (
            GraphBuilder()
            .dense(rng.uniform(-1, 1, (8, 4)))
            .dense(rng.uniform(-1, 1, (4, 2)), activation="none")
            .build()
        )
        assert g.edges() == [("dense0", "dense1")]
        with pytest.raises(ValueError, match="input"):
            g.validate_input(np.zeros((3, 7)))


class TestTraceMLP:
    def test_reference_matches_mlp_logits(self, rng):
        mlp = MLP((12, 10, 4), rng=rng)
        calib = rng.uniform(0, 1, (30, 12))
        graph = trace_mlp(mlp, calib)
        x = rng.uniform(0, 1, (9, 12))
        # The MLP's forward applies softmax; compare pre-softmax logits.
        h = x
        for k, (w, b) in enumerate(zip(mlp.weights, mlp.biases)):
            z = h @ w + b
            h = z if k == mlp.n_layers - 1 else np.maximum(z, 0.0)
        assert np.allclose(graph.reference_forward(x), h)

    def test_input_scales_match_crossbar_mlp(self, rng):
        mlp = MLP((12, 10, 4), rng=rng)
        calib = rng.uniform(0, 1, (30, 12))
        graph = trace_mlp(mlp, calib)
        xb = CrossbarMLP(mlp, calib, rng=0)
        assert [n.input_scale for n in graph] == pytest.approx(
            [layer.input_scale for layer in xb.layers]
        )

    def test_calibration_shape_checked(self, rng):
        mlp = MLP((12, 10, 4), rng=rng)
        with pytest.raises(ValueError, match="calibration"):
            trace_mlp(mlp, rng.uniform(0, 1, (30, 11)))


class TestTraceCNN:
    def test_reference_matches_cnn_pre_softmax(self, rng):
        cnn = SimpleCNN(rng=rng)
        calib = rng.uniform(0, 1, (20, 8, 8))
        graph = trace_cnn(cnn, calib)
        imgs = rng.uniform(0, 1, (6, 8, 8))
        _, pre = cnn._conv_forward(imgs)
        hidden = np.maximum(pre, 0.0).reshape(6, -1)
        logits = hidden @ cnn.dense_w + cnn.dense_b
        assert np.allclose(graph.reference_forward(imgs), logits)

    def test_graph_shape(self, rng):
        cnn = SimpleCNN(rng=rng)
        graph = trace_cnn(cnn, rng.uniform(0, 1, (20, 8, 8)))
        assert graph.input_is_image
        assert [n.kind for n in graph] == ["conv2d", "dense"]
        assert graph.nodes[0].input_scale == 1.0
