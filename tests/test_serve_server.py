"""Tests for the JSON-lines socket server and blocking client."""

import asyncio
import json
import socket

import numpy as np

from repro.serve import ServeClient, ServiceConfig, SimulationServer, SimulationService

MODEL = {
    "n_samples": 120,
    "n_features": 16,
    "n_classes": 4,
    "hidden": [8],
    "epochs": 4,
    "wire_resistance": 1.0,
}


def with_server(client_fn, config=None):
    """Start a server on an ephemeral port, run ``client_fn(host, port)``
    in a worker thread, and return its result."""

    async def main():
        server = SimulationServer(
            SimulationService(config), host="127.0.0.1", port=0
        )
        host, port = await server.start()
        try:
            return await asyncio.to_thread(client_fn, host, port)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestClientRoundTrip:
    def test_infer_round_trip(self):
        def work(host, port):
            with ServeClient(host=host, port=port) as client:
                return client.request(
                    "infer", {"model": MODEL, "x": [[0.25] * 16]}
                )

        response = with_server(work)
        assert response["ok"] is True
        assert response["kind"] == "infer"
        assert response["id"] == 1
        assert len(response["result"]["logits"][0]) == 4
        assert response["report"]["totals"]["energy"] > 0

    def test_sweep_warm_hit_is_bit_identical_over_the_wire(self):
        sweep = {"yields": [1.0, 0.8], "trials": 1, "epochs": 4, "n_samples": 120}

        def work(host, port):
            with ServeClient(host=host, port=port) as client:
                cold = client.request("sweep", sweep)
                warm = client.request("sweep", sweep)
                return cold, warm

        cold, warm = with_server(work)
        assert cold["cache"] == "miss" and warm["cache"] == "hit"
        assert cold["result"] == warm["result"]
        assert cold["report"] == warm["report"]

    def test_request_ids_echo_back(self):
        def work(host, port):
            with ServeClient(host=host, port=port) as client:
                a = client.request("stats")
                b = client.request("stats")
                return a["id"], b["id"]

        assert with_server(work) == (1, 2)


class TestProtocolErrors:
    def test_unknown_kind_is_structured(self):
        def work(host, port):
            with ServeClient(host=host, port=port) as client:
                return client.request("bogus")

        response = with_server(work)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        assert "bogus" in response["error"]["message"]

    def test_invalid_json_line_is_structured(self):
        def work(host, port):
            with socket.create_connection((host, port), timeout=30) as sock:
                fh = sock.makefile("rwb")
                fh.write(b"this is not json\n")
                fh.flush()
                return json.loads(fh.readline())

        response = with_server(work)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        assert "invalid JSON" in response["error"]["message"]

    def test_queue_full_travels_as_structured_error(self):
        config = ServiceConfig(
            max_inflight=1, batch_window_s=60.0, max_batch=100
        )

        def work(host, port):
            with socket.create_connection((host, port), timeout=30) as sock:
                fh = sock.makefile("rwb")
                # First request parks in the batcher (window 60 s) and
                # holds the only in-flight slot; the second is rejected.
                for rid in (1, 2):
                    fh.write(
                        (
                            json.dumps(
                                {
                                    "id": rid,
                                    "kind": "infer",
                                    "params": {
                                        "model": MODEL,
                                        "x": [[0.5] * 16],
                                    },
                                }
                            )
                            + "\n"
                        ).encode()
                    )
                    fh.flush()
                rejection = json.loads(fh.readline())
                return rejection

        rejection = with_server(work, config=config)
        assert rejection["ok"] is False
        assert rejection["error"]["code"] == "queue_full"
        assert rejection["error"]["limit"] == 1
        assert rejection["id"] == 2  # the rejected request, out of order

    def test_blank_lines_are_ignored(self):
        def work(host, port):
            with socket.create_connection((host, port), timeout=30) as sock:
                fh = sock.makefile("rwb")
                fh.write(b"\n\n")
                fh.write(
                    (json.dumps({"id": 5, "kind": "stats"}) + "\n").encode()
                )
                fh.flush()
                return json.loads(fh.readline())

        response = with_server(work)
        assert response["ok"] is True
        assert response["id"] == 5


class TestConcurrentConnections:
    def test_two_connections_coalesce_into_one_flush(self):
        """Requests from different sockets land in the same batcher
        group — the whole point of serving from one process."""
        # Generous window: both client threads must land inside it even
        # on a slow single-core CI runner.
        config = ServiceConfig(batch_window_s=0.5, max_batch=8)
        rng = np.random.default_rng(0)
        xs = rng.uniform(0, 1, size=(2, 16))

        async def main():
            service = SimulationService(config)
            server = SimulationServer(service, host="127.0.0.1", port=0)
            host, port = await server.start()

            def one_client(x):
                with ServeClient(host=host, port=port) as client:
                    return client.request(
                        "infer", {"model": MODEL, "x": [x.tolist()]}
                    )

            try:
                results = await asyncio.gather(
                    asyncio.to_thread(one_client, xs[0]),
                    asyncio.to_thread(one_client, xs[1]),
                )
            finally:
                await server.stop()
            return service, results

        service, results = asyncio.run(main())
        assert all(r["ok"] for r in results)
        assert service.batcher.stats.requests == 2
        assert service.batcher.stats.coalesced_flushes == 1
