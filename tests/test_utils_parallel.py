"""Tests for the parallel, deterministic Monte Carlo sweep engine."""

import numpy as np
import pytest

from repro.utils.parallel import (
    ENV_WORKERS,
    resolve_workers,
    run_blocks,
    run_grid,
    run_trials,
    seed_sequence_from,
    spawn_trial_seeds,
)


# Module-level tasks: the process backend pickles them by reference.
def _draw(trial, rng):
    return (trial, float(rng.random()))


def _grid_draw(point, trial, rng):
    return (point, trial, float(rng.random()))


def _block_draw(count, rng):
    return rng.random(count)


def _with_args(trial, rng, offset, scale):
    return offset + scale * trial


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers(None) == 0

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "4")
        assert resolve_workers(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert resolve_workers(None) == 3

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "many")
        with pytest.raises(ValueError, match=ENV_WORKERS):
            resolve_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestSeeding:
    def test_int_seed_reproducible(self):
        a = spawn_trial_seeds(7, 5)
        b = spawn_trial_seeds(7, 5)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]

    def test_streams_independent(self):
        seeds = spawn_trial_seeds(0, 4)
        draws = [np.random.default_rng(s).random() for s in seeds]
        assert len(set(draws)) == 4

    def test_generator_input_draws_once(self):
        gen1 = np.random.default_rng(3)
        gen2 = np.random.default_rng(3)
        s1 = seed_sequence_from(gen1)
        s2 = seed_sequence_from(gen2)
        assert s1.entropy == s2.entropy
        # The generator advanced: a second derivation differs.
        assert seed_sequence_from(gen1).entropy != s1.entropy

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            seed_sequence_from("seed")


class TestRunTrials:
    def test_ordered_results(self):
        results = run_trials(_draw, 8, seed=0, workers=0)
        assert [r[0] for r in results] == list(range(8))

    def test_serial_deterministic(self):
        assert run_trials(_draw, 6, seed=1) == run_trials(_draw, 6, seed=1)

    def test_seed_changes_results(self):
        assert run_trials(_draw, 6, seed=1) != run_trials(_draw, 6, seed=2)

    def test_parallel_matches_serial_bit_identical(self):
        serial = run_trials(_draw, 10, seed=42, workers=0)
        for workers, chunk in ((1, None), (2, None), (2, 1), (3, 4)):
            parallel = run_trials(
                _draw, 10, seed=42, workers=workers, chunk_size=chunk
            )
            assert parallel == serial

    def test_task_args_forwarded(self):
        results = run_trials(
            _with_args, 3, seed=0, task_args=(10.0, 2.0)
        )
        assert results == [10.0, 12.0, 14.0]

    def test_zero_trials(self):
        assert run_trials(_draw, 0, seed=0) == []

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            run_trials(_draw, -1)


class TestRunGrid:
    def test_shape_and_order(self):
        grid = run_grid(_grid_draw, ["a", "b", "c"], trials=2, seed=0)
        assert len(grid) == 3
        assert all(len(row) == 2 for row in grid)
        assert grid[2][1][:2] == ("c", 1)

    def test_parallel_matches_serial(self):
        serial = run_grid(_grid_draw, [0.1, 0.2], trials=3, seed=5, workers=0)
        parallel = run_grid(_grid_draw, [0.1, 0.2], trials=3, seed=5, workers=2)
        assert parallel == serial

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            run_grid(_grid_draw, [1], trials=0)


class TestRunBlocks:
    def test_concatenated_length(self):
        out = run_blocks(_block_draw, 1000, block_size=128, seed=0)
        assert out.shape == (1000,)

    def test_partial_last_block(self):
        out = run_blocks(_block_draw, 10, block_size=4, seed=0)
        assert out.shape == (10,)

    def test_worker_count_invariant(self):
        serial = run_blocks(_block_draw, 500, block_size=64, seed=9, workers=0)
        parallel = run_blocks(
            _block_draw, 500, block_size=64, seed=9, workers=2
        )
        assert np.array_equal(serial, parallel)

    def test_block_size_is_part_of_the_experiment(self):
        a = run_blocks(_block_draw, 256, block_size=64, seed=0)
        b = run_blocks(_block_draw, 256, block_size=32, seed=0)
        assert not np.array_equal(a, b)

    def test_zero_trials(self):
        assert run_blocks(_block_draw, 0, block_size=8, seed=0).size == 0

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            run_blocks(_block_draw, 10, block_size=0)
