"""Tests for the parallel, deterministic Monte Carlo sweep engine."""

import os
import sys

import numpy as np
import pytest

from repro.utils.parallel import (
    ENV_WORKERS,
    SharedArrayPack,
    child_seed,
    resolve_workers,
    run_blocks,
    run_grid,
    run_trials,
    seed_sequence_from,
    spawn_trial_seeds,
)


def _shm_names():
    """Names of live POSIX shared-memory segments (Linux only)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# Module-level tasks: the process backend pickles them by reference.
def _draw(trial, rng):
    return (trial, float(rng.random()))


def _grid_draw(point, trial, rng):
    return (point, trial, float(rng.random()))


def _block_draw(count, rng):
    return rng.random(count)


def _with_args(trial, rng, offset, scale):
    return offset + scale * trial


def _sum_array(trial, rng, arr):
    return float(arr.sum()) + trial


def _array_probe(trial, rng, arr):
    """Report what the task actually sees: content checksum + writability."""
    return (float(arr.sum()), bool(arr.flags.writeable))


def _nested_probe(trial, rng, payload):
    """Payload is {'xs': [arr, arr], 'meta': (arr, 'tag')} — exercise the
    recursive shared-memory extraction."""
    total = sum(float(a.sum()) for a in payload["xs"])
    arr, tag = payload["meta"]
    return (total + float(arr.sum()), tag)


def _crash_on_three(trial, rng, arr):
    if trial == 3:
        os._exit(13)  # hard worker death, not an exception
    return trial


def _raise_on_two(trial, rng, arr):
    if trial == 2:
        raise ValueError("task failure on trial 2")
    return trial


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers(None) == 0

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "4")
        assert resolve_workers(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert resolve_workers(None) == 3

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "many")
        with pytest.raises(ValueError, match=ENV_WORKERS):
            resolve_workers(None)

    def test_minus_one_means_all_cores(self):
        assert resolve_workers(-1) == (os.cpu_count() or 1)

    def test_minus_one_via_env(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "-1")
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_other_negatives_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestSeeding:
    def test_int_seed_reproducible(self):
        a = spawn_trial_seeds(7, 5)
        b = spawn_trial_seeds(7, 5)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]

    def test_streams_independent(self):
        seeds = spawn_trial_seeds(0, 4)
        draws = [np.random.default_rng(s).random() for s in seeds]
        assert len(set(draws)) == 4

    def test_generator_branch_covers_full_seed_range(self):
        """Regression: the Generator branch must draw over the *closed*
        range [0, 2**63 - 1] (``endpoint=True``) — the historical
        exclusive bound silently dropped the top value."""
        for k in (0, 1, 7, 12345):
            expected = np.random.default_rng(k).integers(
                0, 2**63 - 1, endpoint=True
            )
            assert seed_sequence_from(np.random.default_rng(k)).entropy == int(
                expected
            )

    def test_child_seed_matches_spawn(self):
        """The engine's seeding contract: stateless per-index derivation
        is bit-identical to SeedSequence.spawn, at any nesting."""
        for kids_root in (
            np.random.SeedSequence(42),
            np.random.SeedSequence(42).spawn(3)[2],
        ):
            spawned = kids_root.spawn(5)
            for i, kid in enumerate(spawned):
                manual = child_seed(kids_root, i)
                assert np.array_equal(
                    kid.generate_state(8), manual.generate_state(8)
                )

    def test_child_seed_preserves_pool_size(self):
        root = np.random.SeedSequence(1, pool_size=8)
        assert child_seed(root, 0).pool_size == 8
        assert np.array_equal(
            root.spawn(1)[0].generate_state(4),
            child_seed(root, 0).generate_state(4),
        )

    def test_spawn_trial_seeds_equal_spawn(self):
        root = np.random.SeedSequence(9)
        ours = spawn_trial_seeds(np.random.SeedSequence(9), 4)
        theirs = root.spawn(4)
        for a, b in zip(ours, theirs):
            assert np.array_equal(a.generate_state(4), b.generate_state(4))

    def test_generator_input_draws_once(self):
        gen1 = np.random.default_rng(3)
        gen2 = np.random.default_rng(3)
        s1 = seed_sequence_from(gen1)
        s2 = seed_sequence_from(gen2)
        assert s1.entropy == s2.entropy
        # The generator advanced: a second derivation differs.
        assert seed_sequence_from(gen1).entropy != s1.entropy

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            seed_sequence_from("seed")


class TestRunTrials:
    def test_ordered_results(self):
        results = run_trials(_draw, 8, seed=0, workers=0)
        assert [r[0] for r in results] == list(range(8))

    def test_serial_deterministic(self):
        assert run_trials(_draw, 6, seed=1) == run_trials(_draw, 6, seed=1)

    def test_seed_changes_results(self):
        assert run_trials(_draw, 6, seed=1) != run_trials(_draw, 6, seed=2)

    def test_parallel_matches_serial_bit_identical(self):
        serial = run_trials(_draw, 10, seed=42, workers=0)
        for workers, chunk in ((1, None), (2, None), (2, 1), (3, 4)):
            parallel = run_trials(
                _draw, 10, seed=42, workers=workers, chunk_size=chunk
            )
            assert parallel == serial

    def test_task_args_forwarded(self):
        results = run_trials(
            _with_args, 3, seed=0, task_args=(10.0, 2.0)
        )
        assert results == [10.0, 12.0, 14.0]

    def test_zero_trials(self):
        assert run_trials(_draw, 0, seed=0) == []

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            run_trials(_draw, -1)


class TestRunGrid:
    def test_shape_and_order(self):
        grid = run_grid(_grid_draw, ["a", "b", "c"], trials=2, seed=0)
        assert len(grid) == 3
        assert all(len(row) == 2 for row in grid)
        assert grid[2][1][:2] == ("c", 1)

    def test_parallel_matches_serial(self):
        serial = run_grid(_grid_draw, [0.1, 0.2], trials=3, seed=5, workers=0)
        parallel = run_grid(_grid_draw, [0.1, 0.2], trials=3, seed=5, workers=2)
        assert parallel == serial

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            run_grid(_grid_draw, [1], trials=0)


class TestRunBlocks:
    def test_concatenated_length(self):
        out = run_blocks(_block_draw, 1000, block_size=128, seed=0)
        assert out.shape == (1000,)

    def test_partial_last_block(self):
        out = run_blocks(_block_draw, 10, block_size=4, seed=0)
        assert out.shape == (10,)

    def test_worker_count_invariant(self):
        serial = run_blocks(_block_draw, 500, block_size=64, seed=9, workers=0)
        parallel = run_blocks(
            _block_draw, 500, block_size=64, seed=9, workers=2
        )
        assert np.array_equal(serial, parallel)

    def test_block_size_is_part_of_the_experiment(self):
        a = run_blocks(_block_draw, 256, block_size=64, seed=0)
        b = run_blocks(_block_draw, 256, block_size=32, seed=0)
        assert not np.array_equal(a, b)

    def test_zero_trials(self):
        assert run_blocks(_block_draw, 0, block_size=8, seed=0).size == 0

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            run_blocks(_block_draw, 10, block_size=0)


class TestSharedMemoryArgs:
    """The persistent-pool shared-memory argument path."""

    def test_array_args_reach_workers_bit_identical(self):
        arr = np.random.default_rng(0).random(4096)
        serial = run_trials(_sum_array, 4, seed=0, workers=0, task_args=(arr,))
        pooled = run_trials(_sum_array, 4, seed=0, workers=2, task_args=(arr,))
        assert pooled == serial

    def test_worker_views_are_read_only(self):
        arr = np.arange(256, dtype=float)
        (checksum, writeable), *_ = run_trials(
            _array_probe, 2, seed=0, workers=1, task_args=(arr,)
        )
        assert checksum == float(arr.sum())
        assert writeable is False  # shared views must not be mutable

    def test_nested_containers_round_trip(self):
        rng = np.random.default_rng(3)
        payload = {
            "xs": [rng.random(100), rng.random(50)],
            "meta": (rng.random(10), "tag"),
        }
        serial = run_trials(
            _nested_probe, 3, seed=1, workers=0, task_args=(payload,)
        )
        pooled = run_trials(
            _nested_probe, 3, seed=1, workers=2, task_args=(payload,)
        )
        assert pooled == serial

    def test_pack_round_trips_arrays(self):
        arrays = [
            np.arange(7, dtype=np.float64),
            np.zeros((0,)),
            np.arange(12, dtype=np.int32).reshape(3, 4),
        ]
        pack = SharedArrayPack(arrays)
        try:
            shm, views = SharedArrayPack.attach(pack.name, pack.specs)
            try:
                for orig, view in zip(arrays, views):
                    assert view.dtype == orig.dtype
                    assert np.array_equal(view, orig)
                    assert not view.flags.writeable
            finally:
                del views
                shm.close()
        finally:
            pack.release()

    @pytest.mark.skipif(
        not sys.platform.startswith("linux"), reason="/dev/shm is Linux-only"
    )
    def test_segment_unlinked_on_normal_exit(self):
        before = _shm_names()
        run_trials(
            _sum_array, 6, seed=0, workers=2,
            task_args=(np.ones(2048),),
        )
        assert _shm_names() <= before

    @pytest.mark.skipif(
        not sys.platform.startswith("linux"), reason="/dev/shm is Linux-only"
    )
    def test_segment_unlinked_on_task_exception(self):
        before = _shm_names()
        with pytest.raises(ValueError, match="trial 2"):
            run_trials(
                _raise_on_two, 6, seed=0, workers=2,
                task_args=(np.ones(2048),),
            )
        assert _shm_names() <= before


class TestPoolLifecycle:
    """Edge cases of the persistent pool itself."""

    def test_worker_crash_surfaces_clear_error(self):
        """A worker dying mid-chunk (os._exit, segfault analogue) must
        raise promptly with a descriptive message — never hang."""
        before = _shm_names()
        with pytest.raises(RuntimeError, match="worker crashed"):
            run_trials(
                _crash_on_three, 8, seed=0, workers=2,
                task_args=(np.ones(1024),),
            )
        if sys.platform.startswith("linux"):
            assert _shm_names() <= before  # released despite the crash

    def test_chunk_size_one_bit_identical(self):
        serial = run_trials(_draw, 9, seed=4, workers=0)
        assert run_trials(_draw, 9, seed=4, workers=2, chunk_size=1) == serial

    def test_fewer_jobs_than_workers(self):
        serial = run_trials(_draw, 2, seed=4, workers=0)
        assert run_trials(_draw, 2, seed=4, workers=4) == serial

    def test_single_job_pool(self):
        serial = run_trials(_draw, 1, seed=0, workers=0)
        assert run_trials(_draw, 1, seed=0, workers=2) == serial
