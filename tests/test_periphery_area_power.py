"""Tests for the area/power budget — the Fig 5 claims."""

import pytest

from repro.periphery.area_power import (
    Component,
    TileBudget,
    adc_resolution_sweep,
    isaac_tile_budget,
)


class TestComponent:
    def test_totals(self):
        c = Component("adc", count=8, unit_power=2e-3, unit_area=1.2e-3)
        assert c.total_power == pytest.approx(16e-3)
        assert c.total_area == pytest.approx(9.6e-3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Component("x", count=-1, unit_power=1, unit_area=1)


class TestTileBudget:
    def test_fractions_sum_to_one(self):
        budget = isaac_tile_budget()
        assert sum(budget.power_fractions().values()) == pytest.approx(1.0)
        assert sum(budget.area_fractions().values()) == pytest.approx(1.0)

    def test_duplicate_names_rejected(self):
        c = Component("adc", 1, 1e-3, 1e-3)
        with pytest.raises(ValueError, match="duplicate"):
            TileBudget([c, c])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TileBudget([])

    def test_table_rows(self):
        rows = isaac_tile_budget().table()
        names = {r["name"] for r in rows}
        assert {"adc", "dac", "crossbar"}.issubset(names)


class TestFig5Claims:
    """'the ADC alone typically dominates CIM die area (>90%) and power
    consumption (>65%)' — Fig 5."""

    def test_adc_area_share_over_90_percent(self):
        share = isaac_tile_budget().share("adc")
        assert share["area"] > 0.90

    def test_adc_power_share_over_65_percent(self):
        share = isaac_tile_budget().share("adc")
        assert share["power"] > 0.65

    def test_adc_dominates_every_other_component(self):
        budget = isaac_tile_budget()
        pf = budget.power_fractions()
        af = budget.area_fractions()
        for name in pf:
            if name != "adc":
                assert pf["adc"] > pf[name]
                assert af["adc"] > af[name]

    def test_registers_ablation_reduces_share(self):
        base = isaac_tile_budget().share("adc")
        with_regs = isaac_tile_budget(include_registers=True).share("adc")
        assert with_regs["area"] < base["area"]


class TestResolutionSweep:
    def test_error_decreases_cost_increases(self):
        """The Section II-E trade-off in one sweep."""
        rows = adc_resolution_sweep((4, 6, 8, 10))
        errors = [r["rms_quantization_error"] for r in rows]
        powers = [r["adc_power_mW"] for r in rows]
        areas = [r["adc_area_mm2"] for r in rows]
        assert errors == sorted(errors, reverse=True)
        assert powers == sorted(powers)
        assert areas == sorted(areas)

    def test_share_grows_with_resolution(self):
        rows = adc_resolution_sweep((4, 8, 10))
        shares = [r["adc_area_share"] for r in rows]
        assert shares == sorted(shares)
