"""Tests for the telemetry subsystem: counters, timers, scopes, reports."""

import json

import pytest

from repro.core.metrics import CostAccumulator, OperationCost
from repro.utils import telemetry
from repro.utils.telemetry import (
    COST_PREFIXES,
    ManualClock,
    NullTelemetry,
    RunReport,
    Telemetry,
)


class TestCounters:
    def test_incr_and_count(self):
        tel = Telemetry()
        tel.incr("x")
        tel.incr("x", 2.5)
        assert tel.count("x") == 3.5
        assert tel.count("never") == 0.0

    def test_charge_mirrors_cost_counters(self):
        tel = Telemetry()
        tel.charge("adc", energy=1.0, latency=2.0, data_moved=3.0)
        tel.charge("adc", energy=0.5, latency=0.0, data_moved=0.0)
        assert tel.count("cost.energy.adc") == 1.5
        assert tel.count("cost.latency.adc") == 2.0
        assert tel.count("cost.data_moved.adc") == 3.0

    def test_reset_clears_everything(self):
        tel = Telemetry(clock=ManualClock())
        tel.incr("x")
        tel.record_time("t", 1.0)
        tel.reset()
        assert tel.counters == {}
        assert tel.timers == {}
        assert tel.timer_counts == {}


class TestTimers:
    def test_manual_clock_timer(self):
        clock = ManualClock()
        tel = Telemetry(clock=clock)
        with tel.timer("phase"):
            clock.advance(2.5)
        with tel.timer("phase"):
            clock.advance(0.5)
        assert tel.timers["phase"] == pytest.approx(3.0)
        assert tel.timer_counts["phase"] == 2

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Telemetry().record_time("t", -1.0)

    def test_manual_clock_rejects_backwards(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_snapshot_can_exclude_timers(self):
        clock = ManualClock()
        tel = Telemetry(clock=clock)
        tel.incr("c")
        with tel.timer("t"):
            clock.advance(1.0)
        full = tel.snapshot()
        assert full["timers"] == {"t": 1.0}
        bare = tel.snapshot(include_timers=False)
        assert "timers" not in bare
        assert bare["counters"] == {"c": 1.0}


class TestScoping:
    def test_scoped_isolates_increments(self):
        before = telemetry.current().count("scoped.probe")
        with telemetry.scoped() as scope:
            telemetry.current().incr("scoped.probe")
            assert scope.count("scoped.probe") == 1.0
        assert telemetry.current().count("scoped.probe") == before

    def test_scoped_restores_on_exception(self):
        outer = telemetry.current()
        with pytest.raises(RuntimeError):
            with telemetry.scoped():
                raise RuntimeError("boom")
        assert telemetry.current() is outer

    def test_disabled_records_nothing(self):
        with telemetry.disabled():
            tel = telemetry.current()
            tel.incr("x")
            tel.charge("adc", 1.0, 1.0, 1.0)
            tel.record_time("t", 1.0)
            with tel.timer("t2"):
                pass
            assert tel.counters == {}
            assert tel.timers == {}

    def test_null_telemetry_is_a_telemetry(self):
        assert isinstance(NullTelemetry(), Telemetry)

    def test_cost_accumulator_mirrors_into_scope(self):
        with telemetry.scoped() as scope:
            acc = CostAccumulator()
            acc.add("adc", OperationCost(energy=2.0, latency=1.0))
        assert scope.count("cost.energy.adc") == 2.0
        assert scope.count("cost.latency.adc") == 1.0


class TestAsyncScopeIsolation:
    """The scope stack lives in a ``contextvars.ContextVar``, so every
    asyncio task captures its own stack: two concurrently-scoped captures
    must never cross-contaminate even when their awaits interleave."""

    def test_concurrent_tasks_do_not_cross_contaminate(self):
        import asyncio

        async def capture(name, n, pause):
            with telemetry.scoped() as scope:
                for _ in range(n):
                    telemetry.current().incr(name)
                    telemetry.current().charge(name, 1.0, 0.5, 0.0)
                    await asyncio.sleep(pause)
            return scope

        async def main():
            # Different pause lengths force the two tasks' awaits to
            # interleave in the event loop.
            return await asyncio.gather(
                capture("task_a", 5, 0.001), capture("task_b", 3, 0.0015)
            )

        scope_a, scope_b = asyncio.run(main())
        assert scope_a.count("task_a") == 5.0
        assert scope_a.count("task_b") == 0.0
        assert scope_b.count("task_b") == 3.0
        assert scope_b.count("task_a") == 0.0
        report_a = RunReport.from_counters(
            scope_a.snapshot(include_timers=False)["counters"], label="a"
        )
        report_b = RunReport.from_counters(
            scope_b.snapshot(include_timers=False)["counters"], label="b"
        )
        report_a.validate()
        report_b.validate()
        assert report_a.total_energy == 5.0
        assert report_b.total_energy == 3.0
        assert list(report_a.categories) == ["task_a"]
        assert list(report_b.categories) == ["task_b"]

    def test_nested_scope_inside_task_pops_to_task_scope(self):
        import asyncio

        async def main():
            with telemetry.scoped() as outer:
                with telemetry.scoped() as inner:
                    telemetry.current().incr("inner.only")
                telemetry.current().incr("outer.only")
                await asyncio.sleep(0)
            return outer, inner

        outer, inner = asyncio.run(main())
        assert inner.count("inner.only") == 1.0
        assert inner.count("outer.only") == 0.0
        assert outer.count("outer.only") == 1.0
        assert outer.count("inner.only") == 0.0

    def test_to_thread_inherits_ambient_scope(self):
        """``asyncio.to_thread`` copies the submitting task's context, so
        compute pushed off the event loop still records into the scope
        that launched it — the property the serving layer's heavy job
        kinds rely on."""
        import asyncio

        def work():
            telemetry.current().incr("threaded.work")

        async def main():
            with telemetry.scoped() as scope:
                await asyncio.to_thread(work)
            return scope

        scope = asyncio.run(main())
        assert scope.count("threaded.work") == 1.0


class TestRunReport:
    def _sample(self):
        return RunReport(
            label="sample",
            categories={
                "adc": {"energy": 3.0, "latency": 1.0, "data_moved": 0.0},
                "dac": {"energy": 1.0, "latency": 1.0, "data_moved": 4.0},
            },
            counters={"ops": 7.0},
            timers={"phase": 0.5},
            area={"adc": 0.9, "rest": 0.1},
        )

    def test_totals(self):
        r = self._sample()
        assert r.total_energy == 4.0
        assert r.total_latency == 2.0
        assert r.total_data_moved == 4.0
        assert r.total_area == pytest.approx(1.0)

    def test_fractions_sum_to_one(self):
        r = self._sample()
        assert sum(r.energy_fractions().values()) == pytest.approx(1.0)
        assert r.energy_fractions()["adc"] == pytest.approx(0.75)
        assert r.area_fractions()["adc"] == pytest.approx(0.9)
        r.validate()

    def test_empty_report_fractions_are_zero(self):
        r = RunReport()
        assert r.energy_fractions() == {}
        r.validate()

    def test_json_round_trip(self):
        r = self._sample()
        restored = RunReport.from_json(r.to_json())
        assert restored == r
        # Derived fields present in the serialized form.
        data = json.loads(r.to_json())
        assert data["totals"]["energy"] == 4.0
        assert data["fractions"]["energy"]["adc"] == pytest.approx(0.75)

    def test_merge_sums_elementwise(self):
        a, b = self._sample(), self._sample()
        merged = a.merge(b)
        assert merged.total_energy == 8.0
        assert merged.counters["ops"] == 14.0
        assert merged.area["adc"] == pytest.approx(1.8)
        # Inputs untouched.
        assert a.total_energy == 4.0

    def test_reduce_in_job_order_matches_pairwise(self):
        reports = [self._sample() for _ in range(4)]
        reduced = RunReport.reduce(reports, label="all")
        assert reduced.label == "all"
        assert reduced.total_energy == 16.0
        step = reports[0].merge(reports[1]).merge(reports[2]).merge(reports[3])
        assert reduced.categories == step.categories

    def test_from_counters_folds_cost_prefixes(self):
        counters = {
            "cost.energy.adc": 2.0,
            "cost.latency.adc": 1.0,
            "cost.data_moved.adc": 0.5,
            "plain.counter": 9.0,
        }
        r = RunReport.from_counters(counters, label="fold")
        assert r.categories["adc"] == {
            "energy": 2.0,
            "latency": 1.0,
            "data_moved": 0.5,
        }
        assert r.counters == {"plain.counter": 9.0}
        assert all(
            not k.startswith(COST_PREFIXES) for k in r.counters
        )

    def test_from_cost_accumulator(self):
        with telemetry.scoped():
            acc = CostAccumulator()
            acc.add("adc", OperationCost(energy=5.0))
        r = RunReport.from_cost_accumulator(acc, label="acc")
        assert r.categories["adc"]["energy"] == 5.0

    def test_category_table_rows(self):
        rows = self._sample().category_table()
        assert [row["category"] for row in rows] == ["adc", "dac"]
        assert rows[0]["energy_share"] == pytest.approx(0.75)

    def test_validate_rejects_bad_fractions(self):
        r = RunReport(categories={"a": {"energy": -1.0, "latency": 0.0,
                                        "data_moved": 0.0},
                                  "b": {"energy": 2.0, "latency": 0.0,
                                        "data_moved": 0.0}})
        with pytest.raises(ValueError):
            r.validate()
