"""Tests for repro.utils.units."""

import math

from repro.utils.units import (
    FEMTO,
    GIGA,
    KILO,
    MEGA,
    MICRO,
    MILLI,
    NANO,
    PICO,
    engineering_format,
)


class TestConstants:
    def test_scaling_relations(self):
        assert KILO * MILLI == 1.0
        assert MEGA * MICRO == 1.0
        assert GIGA * NANO == 1.0

    def test_small_prefixes(self):
        assert PICO == 1e-12
        assert FEMTO == 1e-15


class TestEngineeringFormat:
    def test_nano(self):
        assert engineering_format(2.5e-9, "s") == "2.5 ns"

    def test_giga(self):
        assert engineering_format(1.28e9, "Hz") == "1.28 GHz"

    def test_unity(self):
        assert engineering_format(3.0, "V") == "3 V"

    def test_negative_value(self):
        assert engineering_format(-2e-3, "A") == "-2 mA"

    def test_zero(self):
        assert engineering_format(0.0, "J") == "0.0 J"

    def test_nan_passthrough(self):
        assert "nan" in engineering_format(float("nan"), "s")

    def test_no_unit(self):
        assert engineering_format(1e6) == "1 M"

    def test_digits_control(self):
        assert engineering_format(1.23456e-6, "F", digits=2) == "1.2 uF"
