"""Tests for the ReRAM variability models."""

import numpy as np
import pytest

from repro.devices.variability import (
    DriftModel,
    ReadNoiseModel,
    VariabilityStack,
    WriteVariationModel,
)


class TestWriteVariation:
    def test_zero_sigma_is_exact(self):
        model = WriteVariationModel(sigma=0.0)
        target = np.array([1e-5, 2e-5])
        assert np.array_equal(model.apply(target, rng=0), target)

    def test_lognormal_centred_on_target(self, rng):
        model = WriteVariationModel(sigma=0.05)
        samples = model.apply(np.full(20_000, 1e-5), rng=rng)
        # Median of a lognormal equals the underlying target.
        assert np.median(samples) == pytest.approx(1e-5, rel=0.02)

    def test_sigma_controls_spread(self):
        tight = WriteVariationModel(sigma=0.01).apply(np.full(5000, 1e-5), rng=0)
        wide = WriteVariationModel(sigma=0.2).apply(np.full(5000, 1e-5), rng=0)
        assert np.std(wide) > 5 * np.std(tight)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            WriteVariationModel(sigma=-0.1)

    def test_result_positive(self, rng):
        samples = WriteVariationModel(sigma=0.3).apply(np.full(1000, 1e-5), rng=rng)
        assert np.all(samples > 0)


class TestReadNoise:
    def test_zero_sigma_is_exact(self):
        model = ReadNoiseModel(sigma=0.0)
        g = np.array([3e-5])
        assert np.array_equal(model.apply(g, rng=0), g)

    def test_mean_preserved(self, rng):
        model = ReadNoiseModel(sigma=0.02)
        samples = model.apply(np.full(20_000, 1e-5), rng=rng)
        assert np.mean(samples) == pytest.approx(1e-5, rel=0.01)

    def test_never_negative(self, rng):
        samples = ReadNoiseModel(sigma=0.5).apply(np.full(5000, 1e-5), rng=rng)
        assert np.all(samples >= 0)


class TestDrift:
    def test_zero_time_no_change(self):
        model = DriftModel(nu=0.01)
        g = np.array([1e-5])
        assert np.array_equal(model.apply(g, 0.0), g)

    def test_monotone_decay(self):
        model = DriftModel(nu=0.01)
        g = np.array([1e-5])
        g1 = model.apply(g, 10.0)
        g2 = model.apply(g, 1000.0)
        assert g2[0] < g1[0] < g[0]

    def test_nu_zero_disables(self):
        model = DriftModel(nu=0.0)
        g = np.array([1e-5])
        assert np.array_equal(model.apply(g, 1e6), g)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            DriftModel().apply(np.array([1e-5]), -1.0)


class TestStack:
    def test_ideal_has_everything_off(self):
        stack = VariabilityStack.ideal()
        assert stack.write.sigma == 0
        assert stack.read.sigma == 0
        assert stack.drift.nu == 0

    def test_typical_has_everything_on(self):
        stack = VariabilityStack.typical()
        assert stack.write.sigma > 0
        assert stack.read.sigma > 0
        assert stack.drift.nu > 0
