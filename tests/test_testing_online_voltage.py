"""Tests for the voltage-comparison online test ([38])."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.faults.injection import FaultInjector
from repro.faults.models import Fault, FaultType
from repro.testing.online_voltage import VoltageComparisonTester


def _array_with_weights(n=16, seed=0):
    array = CrossbarArray(CrossbarConfig(rows=n, cols=n), rng=seed)
    gen = np.random.default_rng(seed)
    levels = array.config.levels
    array.program(gen.uniform(levels.g_min, levels.g_max * 0.8, (n, n)))
    return array


class TestCleanArray:
    def test_no_detection_without_faults(self):
        array = _array_with_weights()
        report = VoltageComparisonTester(array).detect("sa0")
        assert not report.fault_detected
        assert report.localized_cells == set()

    def test_group_measurement_count(self):
        """One measurement per row group — the test-time saving."""
        array = _array_with_weights(n=16)
        report = VoltageComparisonTester(array, group_size=4).detect("sa0")
        assert report.measurement_count == 4


class TestSA0Detection:
    def test_detects_and_localizes_sa0(self):
        array = _array_with_weights()
        injector = FaultInjector(array, rng=1)
        injector.inject_fault(Fault(FaultType.STUCK_AT_0, 5, 7))
        report = VoltageComparisonTester(array).detect("sa0")
        assert report.fault_detected
        recall, precision = report.localization_precision({(5, 7)})
        assert recall == 1.0
        assert precision == 1.0

    def test_detects_multiple_faults(self):
        array = _array_with_weights(n=24)
        injector = FaultInjector(array, rng=2)
        fm = injector.inject_exact_count(6, FaultType.STUCK_AT_0)
        report = VoltageComparisonTester(array).detect("sa0")
        recall, _ = report.localization_precision(fm.cells())
        assert recall >= 0.8


class TestSA1Detection:
    def test_sa1_needs_decrement_direction(self):
        array = _array_with_weights()
        injector = FaultInjector(array, rng=3)
        injector.inject_fault(Fault(FaultType.STUCK_AT_1, 2, 2))
        report = VoltageComparisonTester(array).detect("sa1")
        assert report.fault_detected
        recall, _ = report.localization_precision({(2, 2)})
        assert recall == 1.0

    def test_bidirectional_covers_both(self):
        array = _array_with_weights()
        injector = FaultInjector(array, rng=4)
        injector.inject_fault(Fault(FaultType.STUCK_AT_0, 1, 1))
        injector.inject_fault(Fault(FaultType.STUCK_AT_1, 9, 9))
        tester = VoltageComparisonTester(array)
        sa0_report, sa1_report = tester.detect_bidirectional()
        localized = sa0_report.localized_cells | sa1_report.localized_cells
        assert {(1, 1), (9, 9)}.issubset(localized)


class TestValidation:
    def test_direction_validated(self):
        array = _array_with_weights(n=4)
        with pytest.raises(ValueError, match="direction"):
            VoltageComparisonTester(array).detect("both")

    def test_group_size_validated(self):
        array = _array_with_weights(n=4)
        with pytest.raises(ValueError):
            VoltageComparisonTester(array, group_size=0)
