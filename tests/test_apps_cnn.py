"""Tests for the CNN-on-CIM application."""

import numpy as np
import pytest

from repro.apps.cnn import CrossbarCNN, SimpleCNN, im2col, synthetic_images


@pytest.fixture(scope="module")
def trained_cnn():
    x, y = synthetic_images(n_samples=300, noise=0.3, rng=0)
    cnn = SimpleCNN(rng=1)
    cnn.train(x[:200], y[:200], epochs=25, rng=2)
    return cnn, x, y


class TestSyntheticImages:
    def test_shapes_and_range(self):
        x, y = synthetic_images(n_samples=50, size=8, rng=0)
        assert x.shape == (50, 8, 8)
        assert y.shape == (50,)
        assert x.min() >= 0 and x.max() <= 1
        assert set(np.unique(y)).issubset({0, 1, 2})

    def test_classes_are_separable_patterns(self):
        x, y = synthetic_images(n_samples=200, noise=0.0, rng=1)
        # Horizontal stripes: rows constant; vertical: columns constant.
        horizontal = x[y == 0][0]
        assert np.allclose(horizontal, horizontal[:, :1])
        vertical = x[y == 1][0]
        assert np.allclose(vertical, vertical[:1, :])

    def test_size_validated(self):
        with pytest.raises(ValueError):
            synthetic_images(size=2)


class TestIm2col:
    def test_patch_count_and_content(self):
        images = np.arange(16, dtype=float).reshape(1, 4, 4)
        patches = im2col(images, 3)
        assert patches.shape == (1, 4, 9)
        assert np.allclose(patches[0, 0], images[0, :3, :3].ravel())
        assert np.allclose(patches[0, 3], images[0, 1:4, 1:4].ravel())

    def test_conv_as_matmul(self, rng):
        """im2col @ kernel == direct convolution."""
        images = rng.uniform(0, 1, (2, 6, 6))
        kernel = rng.normal(0, 1, (3, 3))
        patches = im2col(images, 3)
        via_matmul = (patches @ kernel.ravel()).reshape(2, 4, 4)
        direct = np.zeros((2, 4, 4))
        for r in range(4):
            for c in range(4):
                direct[:, r, c] = (
                    images[:, r : r + 3, c : c + 3] * kernel
                ).sum(axis=(1, 2))
        assert np.allclose(via_matmul, direct)

    def test_kernel_too_large(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 4, 4)), 5)


class TestSoftwareCNN:
    def test_learns_oriented_stripes(self, trained_cnn):
        cnn, x, y = trained_cnn
        assert cnn.accuracy(x[200:], y[200:]) > 0.9

    def test_forward_distribution(self, trained_cnn):
        cnn, x, _ = trained_cnn
        probs = cnn.forward(x[:5])
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_kernel_size_validated(self):
        with pytest.raises(ValueError):
            SimpleCNN(image_size=4, kernel=4)


class TestCrossbarDeployment:
    def test_deployed_accuracy_holds(self, trained_cnn):
        cnn, x, y = trained_cnn
        deployed = CrossbarCNN(cnn, calibration=x[:200], rng=3)
        assert deployed.accuracy(x[200:250], y[200:250]) > 0.9

    def test_logits_track_software(self, trained_cnn):
        cnn, x, _ = trained_cnn
        deployed = CrossbarCNN(cnn, calibration=x[:200], rng=4)
        patches, pre = cnn._conv_forward(x[:1])
        hidden = np.maximum(pre, 0).reshape(1, -1)
        sw_logits = (hidden @ cnn.dense_w + cnn.dense_b)[0]
        hw_logits = deployed.forward_one(x[0])
        assert np.corrcoef(sw_logits, hw_logits)[0, 1] > 0.99

    def test_heavy_faults_degrade(self, trained_cnn):
        cnn, x, y = trained_cnn
        deployed = CrossbarCNN(cnn, calibration=x[:200], rng=5)
        clean = deployed.accuracy(x[200:250], y[200:250])
        deployed.inject_yield_faults(0.5, rng=6)
        faulty = deployed.accuracy(x[200:250], y[200:250])
        assert faulty < clean

    def test_batched_forward_matches_per_image(self, trained_cnn):
        """predict/accuracy batch all images through vmm_batch; the
        result must equal the per-image path exactly (noisy=False)."""
        cnn, x, _ = trained_cnn
        deployed = CrossbarCNN(cnn, calibration=x[:200], rng=7)
        batched = deployed.forward_batch(x[200:220], noisy=False)
        looped = np.stack(
            [deployed.forward_one(img, noisy=False) for img in x[200:220]]
        )
        assert np.allclose(batched, looped, atol=1e-12)

    def test_forward_batch_shape_validated(self, trained_cnn):
        cnn, x, _ = trained_cnn
        deployed = CrossbarCNN(cnn, calibration=x[:200], rng=8)
        with pytest.raises(ValueError, match="batch"):
            deployed.forward_batch(x[0])
