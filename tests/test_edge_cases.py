"""Edge-case and failure-injection coverage across subsystems.

Small, boundary and degenerate configurations that production users hit
first: 1x1 arrays, empty circuits, saturated devices, single-level
ladders, zero-probability processes.
"""

import numpy as np
import pytest

from repro.core.cim_core import CIMCore, CIMCoreParams
from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.crossbar.solver import NodalCrossbarSolver, sneak_path_read_current
from repro.devices.memristor import LinearIonDriftMemristor
from repro.devices.reram import ConductanceLevels, ReRAMCell
from repro.eda.aig import AIG, aig_from_truth_table
from repro.eda.boolean import TruthTable
from repro.eda.flow import EdaFlow
from repro.eda.imply_mapping import map_aig_to_imply
from repro.faults.injection import FaultInjector
from repro.testing.march import FaultyBitMemory, MarchTestRunner, march_c_star


class TestOneByOneCrossbar:
    def test_vmm_single_cell(self):
        xbar = CrossbarArray(CrossbarConfig(rows=1, cols=1), rng=0)
        xbar.program(np.array([[5e-5]]))
        assert xbar.vmm(np.array([0.2]))[0] == pytest.approx(1e-5)

    def test_nodal_solver_single_cell(self):
        solver = NodalCrossbarSolver(wire_resistance=1.0)
        result = solver.solve(np.array([[5e-5]]), np.array([0.2]))
        ideal = 0.2 * 5e-5
        assert result.column_currents[0] == pytest.approx(ideal, rel=0.01)

    def test_sneak_path_single_cell_equals_ideal(self):
        measured, ideal = sneak_path_read_current(np.array([[5e-5]]), 0, 0)
        assert measured == pytest.approx(ideal)

    def test_fault_injection_full_array(self):
        xbar = CrossbarArray(CrossbarConfig(rows=1, cols=1), rng=0)
        xbar.program(np.array([[5e-5]]))
        FaultInjector(xbar, rng=1).inject_exact_count(1)
        assert xbar.fault_count() == 1


class TestDegenerateCircuits:
    def test_constant_only_aig_through_flow(self):
        aig = AIG(1)
        aig.add_output(0)
        results = EdaFlow().run(aig)
        assert all(r.verified for r in results.values())

    def test_identity_function(self):
        aig = AIG(1)
        aig.add_output(aig.input_lit(0))
        program = map_aig_to_imply(aig)
        assert program.execute([0]) == [0]
        assert program.execute([1]) == [1]

    def test_single_variable_truth_tables(self):
        for bits in range(4):
            table = TruthTable(1, bits)
            aig, out = aig_from_truth_table(table)
            aig.add_output(out)
            assert aig.to_truth_tables()[0] == table

    def test_zero_input_truth_table(self):
        true_table = TruthTable(0, 1)
        assert true_table.evaluate([]) == 1
        false_table = TruthTable(0, 0)
        assert false_table.evaluate([]) == 0


class TestDeviceBoundaries:
    def test_memristor_saturated_lrs_stays(self):
        dev = LinearIonDriftMemristor(x0=1.0)
        dev.apply_voltage(2.0, duration=1e-3)
        assert dev.state == 1.0

    def test_memristor_saturated_hrs_recovers(self):
        """The Biolek window's point: boundaries are not sticky for the
        opposite drive direction."""
        dev = LinearIonDriftMemristor(x0=0.0)
        dev.apply_voltage(1.0, duration=1e-3)
        assert dev.state > 0.0

    def test_two_level_ladder(self):
        levels = ConductanceLevels(n_levels=2)
        assert levels.quantize(levels.g_min) == 0
        assert levels.quantize(levels.g_max) == 1

    def test_cell_read_count_tracks(self):
        cell = ReRAMCell(rng=0)
        cell.form()
        for _ in range(5):
            cell.read()
        assert cell.read_count == 5


class TestSingleCellMemoryMarch:
    def test_one_cell_memory(self):
        memory = FaultyBitMemory(1)
        result = MarchTestRunner(march_c_star()).run(memory)
        assert not result.fail
        assert len(result.signatures[0]) == 6


class TestCimCoreMinimal:
    def test_one_by_one_logical_core(self, rng):
        core = CIMCore(CIMCoreParams(rows=1, logical_cols=1), rng=0)
        core.program_weights(np.array([[0.5]]))
        y = core.vmm(np.array([1.0]), noisy=False)
        assert y[0] == pytest.approx(0.5, abs=0.05)

    def test_all_zero_input(self, rng):
        core = CIMCore(CIMCoreParams(rows=8, logical_cols=4), rng=1)
        core.program_weights(rng.uniform(-1, 1, (8, 4)))
        y = core.vmm(np.zeros(8), noisy=False)
        assert np.allclose(y, 0.0, atol=0.05)

    def test_extreme_weights(self):
        core = CIMCore(CIMCoreParams(rows=4, logical_cols=2), rng=2)
        w = np.array([[1.0, -1.0]] * 4)
        core.program_weights(w)
        y = core.vmm(np.ones(4), noisy=False)
        assert y[0] == pytest.approx(4.0, rel=0.05)
        assert y[1] == pytest.approx(-4.0, rel=0.05)
