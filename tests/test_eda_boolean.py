"""Tests for the truth-table Boolean core."""

import pytest

from repro.eda.boolean import TruthTable


class TestConstruction:
    def test_from_function_xor(self):
        tt = TruthTable.from_function(2, lambda a, b: a ^ b)
        assert tt.evaluate([0, 0]) == 0
        assert tt.evaluate([1, 0]) == 1
        assert tt.evaluate([0, 1]) == 1
        assert tt.evaluate([1, 1]) == 0

    def test_constants(self):
        assert TruthTable.constant(3, False).bits == 0
        assert TruthTable.constant(3, True).count_ones() == 8

    def test_variable_projection(self):
        x1 = TruthTable.variable(3, 1)
        for m in range(8):
            assert x1.evaluate([(m >> i) & 1 for i in range(3)]) == (m >> 1) & 1

    def test_from_bitstring(self):
        tt = TruthTable.from_bitstring("0110")
        assert tt.n_vars == 2
        assert tt == TruthTable.from_function(2, lambda a, b: a ^ b)

    def test_from_bitstring_validates(self):
        with pytest.raises(ValueError, match="power of two"):
            TruthTable.from_bitstring("011")
        with pytest.raises(ValueError, match="binary"):
            TruthTable.from_bitstring("01x0")

    def test_bits_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable(1, 16)


class TestOperators:
    def test_de_morgan(self):
        a = TruthTable.variable(3, 0)
        b = TruthTable.variable(3, 1)
        assert (~(a & b)) == ((~a) | (~b))

    def test_xor_identity(self):
        a = TruthTable.variable(2, 0)
        b = TruthTable.variable(2, 1)
        assert (a ^ b) == ((a & ~b) | (~a & b))

    def test_majority_definition(self):
        a, b, c = (TruthTable.variable(3, i) for i in range(3))
        maj = TruthTable.majority(a, b, c)
        assert maj == ((a & b) | (b & c) | (a & c))

    def test_majority_median_property(self):
        a, b, c = (TruthTable.variable(3, i) for i in range(3))
        # M(a, b, 0) = a AND b; M(a, b, 1) = a OR b.
        zero = TruthTable.constant(3, False)
        one = TruthTable.constant(3, True)
        assert TruthTable.majority(a, b, zero) == (a & b)
        assert TruthTable.majority(a, b, one) == (a | b)

    def test_implies(self):
        p = TruthTable.variable(2, 0)
        q = TruthTable.variable(2, 1)
        imp = TruthTable.implies(p, q)
        assert imp.evaluate([1, 0]) == 0
        assert imp.evaluate([0, 0]) == 1
        assert imp.evaluate([1, 1]) == 1

    def test_incompatible_sizes_rejected(self):
        with pytest.raises(ValueError, match="variable counts"):
            TruthTable.variable(2, 0) & TruthTable.variable(3, 0)


class TestStructure:
    def test_cofactor_shannon_expansion(self):
        tt = TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        x0 = TruthTable.variable(3, 0)
        recombined = (x0 & tt.cofactor(0, 1)) | (~x0 & tt.cofactor(0, 0))
        assert recombined == tt

    def test_support_detects_dependence(self):
        tt = TruthTable.from_function(3, lambda a, b, c: a & c)
        assert tt.support() == [0, 2]
        assert tt.depends_on(0)
        assert not tt.depends_on(1)

    def test_is_constant(self):
        assert TruthTable.constant(2, True).is_constant
        assert not TruthTable.variable(2, 0).is_constant

    def test_minterms(self):
        tt = TruthTable.from_function(2, lambda a, b: a & b)
        assert tt.minterms() == [3]

    def test_str_representation(self):
        tt = TruthTable.from_function(2, lambda a, b: a & b)
        assert str(tt) == "1000"
