"""Tests for the DAC model."""

import numpy as np
import pytest

from repro.periphery.dac import DAC, DACConfig


class TestConversion:
    def test_one_bit_levels(self):
        dac = DAC(DACConfig(bits=1, v_min=0.0, v_max=0.2))
        assert np.allclose(dac.convert(np.array([0, 1])), [0.0, 0.2])

    def test_multibit_uniform_steps(self):
        dac = DAC(DACConfig(bits=2, v_min=0.0, v_max=0.3))
        out = dac.convert(np.array([0, 1, 2, 3]))
        assert np.allclose(np.diff(out), 0.1)

    def test_out_of_range_code_rejected(self):
        dac = DAC(DACConfig(bits=2))
        with pytest.raises(ValueError, match="codes"):
            dac.convert(np.array([4]))
        with pytest.raises(ValueError, match="codes"):
            dac.convert(np.array([-1]))


class TestCosts:
    def test_levels(self):
        assert DAC(DACConfig(bits=3)).levels == 8

    def test_energy_scales_with_levels(self):
        e1 = DAC(DACConfig(bits=1)).energy_per_conversion
        e3 = DAC(DACConfig(bits=3)).energy_per_conversion
        assert e3 == pytest.approx(4 * e1)

    def test_area_linear_in_levels(self):
        a1 = DAC(DACConfig(bits=1)).area
        a2 = DAC(DACConfig(bits=2)).area
        assert a2 == pytest.approx(2 * a1)

    def test_power_positive(self):
        assert DAC().power > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DACConfig(bits=0)
        with pytest.raises(ValueError):
            DACConfig(v_min=0.5, v_max=0.2)
