"""Tests for the crossbar array model (Fig 4)."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.devices.variability import (
    DriftModel,
    ReadNoiseModel,
    VariabilityStack,
    WriteVariationModel,
)


class TestConfig:
    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            CrossbarConfig(rows=0, cols=8)

    def test_rejects_negative_wire_resistance(self):
        with pytest.raises(ValueError):
            CrossbarConfig(wire_resistance=-1)


class TestProgramming:
    def test_ideal_program_is_exact(self):
        xbar = CrossbarArray(CrossbarConfig(rows=4, cols=4), rng=0)
        targets = np.full((4, 4), 3e-5)
        xbar.program(targets)
        assert np.allclose(xbar.conductances(), targets)

    def test_shape_mismatch_rejected(self):
        xbar = CrossbarArray(CrossbarConfig(rows=4, cols=4), rng=0)
        with pytest.raises(ValueError, match="shape"):
            xbar.program(np.zeros((3, 4)))

    def test_negative_targets_rejected(self):
        xbar = CrossbarArray(CrossbarConfig(rows=2, cols=2), rng=0)
        with pytest.raises(ValueError, match="non-negative"):
            xbar.program(np.full((2, 2), -1e-5))

    def test_write_verify_reduces_error(self):
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.1),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=0.0),
        )
        targets = np.full((16, 16), 5e-5)
        one_shot = CrossbarArray(
            CrossbarConfig(rows=16, cols=16), variability=stack, rng=1
        )
        one_shot.program(targets)
        err_one = np.abs(one_shot.conductances() - targets).mean()

        verified = CrossbarArray(
            CrossbarConfig(rows=16, cols=16), variability=stack, rng=1
        )
        iterations = verified.program_with_verify(targets, tolerance=0.02)
        err_verified = np.abs(verified.conductances() - targets).mean()
        assert iterations > 1
        assert err_verified < err_one

    def test_write_counts_tracked(self):
        xbar = CrossbarArray(CrossbarConfig(rows=2, cols=2), rng=0)
        xbar.program(np.full((2, 2), 1e-5))
        xbar.program(np.full((2, 2), 2e-5))
        assert np.all(xbar.write_counts() == 2)


class TestVMM:
    def test_matches_matrix_product(self):
        xbar = CrossbarArray(CrossbarConfig(rows=8, cols=4), rng=0)
        g = np.random.default_rng(0).uniform(1e-6, 1e-4, (8, 4))
        xbar.program(g)
        v = np.random.default_rng(1).uniform(0, 0.2, 8)
        assert np.allclose(xbar.vmm(v), v @ g)

    def test_all_columns_computed_in_one_operation(self):
        """All n MACs complete in a single analog step (O(1) claim)."""
        xbar = CrossbarArray(CrossbarConfig(rows=8, cols=8), rng=0)
        xbar.program(np.full((8, 8), 5e-5))
        before = xbar.read_operations
        xbar.vmm(np.full(8, 0.2))
        assert xbar.read_operations == before + 1

    def test_vector_shape_validated(self):
        xbar = CrossbarArray(CrossbarConfig(rows=8, cols=4), rng=0)
        xbar.program(np.full((8, 4), 1e-5))
        with pytest.raises(ValueError, match="shape"):
            xbar.vmm(np.zeros(7))

    def test_batch_vmm(self):
        xbar = CrossbarArray(CrossbarConfig(rows=4, cols=3), rng=0)
        g = np.random.default_rng(2).uniform(1e-6, 1e-4, (4, 3))
        xbar.program(g)
        batch = np.random.default_rng(3).uniform(0, 0.2, (5, 4))
        assert np.allclose(xbar.mvm_batch(batch), batch @ g)

    def test_noisy_vmm_counts_one_read(self):
        """Regression: noisy=True used to double-count (read_conductances
        incremented once, then vmm incremented again)."""
        xbar = CrossbarArray(CrossbarConfig(rows=8, cols=8), rng=0)
        xbar.program(np.full((8, 8), 5e-5))
        before = xbar.read_operations
        xbar.vmm(np.full(8, 0.2), noisy=True)
        assert xbar.read_operations == before + 1

    def test_noisy_batch_counts_one_read_per_vector(self):
        xbar = CrossbarArray(CrossbarConfig(rows=8, cols=8), rng=0)
        xbar.program(np.full((8, 8), 5e-5))
        before = xbar.read_operations
        xbar.mvm_batch(np.full((5, 8), 0.2), noisy=True)
        assert xbar.read_operations == before + 5

    def test_read_conductances_counts_one_read(self):
        xbar = CrossbarArray(CrossbarConfig(rows=8, cols=8), rng=0)
        before = xbar.read_operations
        xbar.read_conductances()
        assert xbar.read_operations == before + 1

    def test_noisy_and_clean_vmm_count_equally(self):
        a = CrossbarArray(CrossbarConfig(rows=8, cols=8), rng=0)
        b = CrossbarArray(CrossbarConfig(rows=8, cols=8), rng=0)
        a.program(np.full((8, 8), 5e-5))
        b.program(np.full((8, 8), 5e-5))
        v = np.full(8, 0.2)
        a.vmm(v, noisy=False)
        b.vmm(v, noisy=True)
        assert a.read_operations == b.read_operations

    def test_noisy_vmm_differs_but_close(self):
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.0),
            read=ReadNoiseModel(sigma=0.02),
            drift=DriftModel(nu=0.0),
        )
        xbar = CrossbarArray(
            CrossbarConfig(rows=16, cols=8), variability=stack, rng=4
        )
        g = np.full((16, 8), 5e-5)
        xbar.program(g)
        v = np.full(16, 0.2)
        ideal = v @ g
        noisy = xbar.vmm(v, noisy=True)
        assert not np.allclose(noisy, ideal)
        assert np.allclose(noisy, ideal, rtol=0.05)


class TestFaultOverlay:
    def test_stuck_cell_overrides_programming(self, small_array):
        small_array.stick_cell(2, 3, 1e-6)
        small_array.program(np.full((8, 8), 5e-5))
        assert small_array.conductances()[2, 3] == 1e-6
        assert small_array.healthy_conductances()[2, 3] == pytest.approx(5e-5)

    def test_release_restores_programmed_value(self, small_array):
        small_array.stick_cell(1, 1, 1e-6)
        small_array.release_cell(1, 1)
        assert small_array.conductances()[1, 1] == pytest.approx(5e-5)

    def test_fault_count(self, small_array):
        small_array.stick_cell(0, 0, 1e-6)
        small_array.stick_cell(7, 7, 1e-4)
        assert small_array.fault_count() == 2

    def test_out_of_bounds_rejected(self, small_array):
        with pytest.raises(IndexError):
            small_array.stick_cell(8, 0, 1e-6)

    def test_stuck_cell_changes_vmm(self, small_array):
        v = np.full(8, 0.2)
        before = small_array.vmm(v).copy()
        small_array.stick_cell(0, 0, 1e-6)
        after = small_array.vmm(v)
        assert after[0] != pytest.approx(before[0])
        assert np.allclose(after[1:], before[1:])


class TestDynamicPower:
    def test_power_formula(self, small_array):
        v = np.full(8, 0.2)
        expected = float((v**2) @ small_array.conductances().sum(axis=1))
        assert small_array.dynamic_read_power(v) == pytest.approx(expected)

    def test_sa1_fault_raises_power(self, small_array):
        """The observable behind the Fig 7 detection method."""
        v = np.full(8, 0.2)
        before = small_array.dynamic_read_power(v)
        small_array.stick_cell(3, 3, 1e-4)  # stuck LRS (high conductance)
        assert small_array.dynamic_read_power(v) > before

    def test_zero_input_zero_power(self, small_array):
        assert small_array.dynamic_read_power(np.zeros(8)) == 0.0


class TestDrift:
    def test_relax_skips_stuck_cells(self):
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.0),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=0.05),
        )
        xbar = CrossbarArray(
            CrossbarConfig(rows=2, cols=2), variability=stack, rng=0
        )
        xbar.program(np.full((2, 2), 5e-5))
        xbar.stick_cell(0, 0, 1e-4)
        xbar.relax(1000.0)
        g = xbar.conductances()
        assert g[0, 0] == 1e-4                  # stuck untouched
        assert g[1, 1] < 5e-5                   # healthy drifted


class TestWriteCells:
    def _xbar(self, n=4):
        xbar = CrossbarArray(CrossbarConfig(rows=n, cols=n), rng=0)
        xbar.program(np.full((n, n), 5e-5))
        return xbar

    def test_only_masked_cells_updated(self):
        xbar = self._xbar()
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 2] = mask[3, 0] = True
        targets = np.full((4, 4), 8e-5)
        xbar.write_cells(mask, targets)
        g = xbar.conductances()
        assert g[1, 2] == 8e-5 and g[3, 0] == 8e-5
        untouched = ~mask
        assert np.all(g[untouched] == 5e-5)
        counts = xbar.write_counts()
        assert counts[1, 2] == counts[3, 0] == 2  # program + pulse
        assert np.all(counts[untouched] == 1)

    def test_no_write_variation_applied(self):
        # write_cells lands exactly what the caller asked for, even when
        # the array carries a noisy write model (callers own the noise).
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.3),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=0.0),
        )
        xbar = CrossbarArray(
            CrossbarConfig(rows=2, cols=2), variability=stack, rng=1
        )
        mask = np.ones((2, 2), dtype=bool)
        xbar.write_cells(mask, np.full((2, 2), 7e-5))
        assert np.all(xbar.conductances() == 7e-5)

    def test_stuck_cells_keep_overlay_but_count_pulse(self):
        xbar = self._xbar()
        pinned = xbar.config.levels.g_max
        xbar.stick_cell(0, 0, pinned)
        before = xbar.write_counts()[0, 0]
        mask = np.ones((4, 4), dtype=bool)
        xbar.write_cells(mask, np.full((4, 4), 2e-5))
        assert xbar.conductances()[0, 0] == pinned
        assert xbar.write_counts()[0, 0] == before + 1

    def test_empty_mask_is_noop(self):
        xbar = self._xbar()
        before = xbar.write_counts().copy()
        xbar.write_cells(np.zeros((4, 4), dtype=bool), np.zeros((4, 4)))
        assert np.array_equal(xbar.write_counts(), before)
        assert np.all(xbar.conductances() == 5e-5)

    def test_shape_and_sign_validated(self):
        xbar = self._xbar()
        with pytest.raises(ValueError, match="shape"):
            xbar.write_cells(np.ones((2, 2), dtype=bool), np.zeros((4, 4)))
        mask = np.ones((4, 4), dtype=bool)
        with pytest.raises(ValueError, match="non-negative"):
            xbar.write_cells(mask, np.full((4, 4), -1e-5))

    def test_targets_clipped_to_physical_range(self):
        xbar = self._xbar()
        levels = xbar.config.levels
        mask = np.ones((4, 4), dtype=bool)
        xbar.write_cells(mask, np.full((4, 4), levels.g_max * 10))
        assert np.all(xbar.conductances() == levels.g_max * 1.5)
