"""Tests for the shared EccCode interface and the BCH / SEC-DAEC codes.

The contract under test is the fast-path-plus-reference pattern: for
every code, ``encode_block``/``decode_block`` must be bit-identical to
the scalar ``encode``/``decode`` loops — verified *exhaustively* over
all 0-, 1- and 2-flip patterns (including the aliasing cases beyond the
guaranteed capability) and over sampled 3-flip patterns.
"""

import numpy as np
import pytest

from repro.testing.ecc import (
    CODES,
    BchCode,
    EccCode,
    HammingSecDed,
    SecDaecCode,
    STATUS_CORRECTED,
    STATUS_DETECTED,
    STATUS_OK,
    make_code,
)

ALL_CODES = sorted(CODES)
STATUS_MAP = {"ok": STATUS_OK, "corrected": STATUS_CORRECTED,
              "detected": STATUS_DETECTED}


def _flip_patterns(n, max_flips=2):
    """All error vectors with 0..max_flips set bits over ``n`` positions."""
    patterns = [np.zeros(n, dtype=np.int8)]
    for p in range(n):
        e = np.zeros(n, dtype=np.int8)
        e[p] = 1
        patterns.append(e)
    if max_flips >= 2:
        for p in range(n):
            for q in range(p + 1, n):
                e = np.zeros(n, dtype=np.int8)
                e[p] = 1
                e[q] = 1
                patterns.append(e)
    return np.array(patterns)


class TestRegistry:
    def test_make_code_names(self):
        for name in ALL_CODES:
            code = make_code(name, 16)
            assert isinstance(code, EccCode)
            assert code.name == name
            assert code.data_bits == 16

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown ECC code"):
            make_code("reed_solomon")

    def test_registry_classes(self):
        assert CODES["secded"] is HammingSecDed
        assert CODES["bch"] is BchCode
        assert CODES["secdaec"] is SecDaecCode


class TestInterface:
    @pytest.mark.parametrize("name", ALL_CODES)
    def test_geometry_is_consistent(self, name):
        code = make_code(name, 32)
        assert code.check_bits == code.codeword_bits - code.data_bits
        assert code.check_bits > 0
        assert code.overhead == pytest.approx(code.check_bits / 32)

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_capability_declared(self, name):
        code = make_code(name, 32)
        assert code.correctable_random == (2 if name == "bch" else 1)

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_invalid_width_raises(self, name):
        with pytest.raises(ValueError):
            make_code(name, 0)

    def test_bch_default_is_78_64(self):
        code = BchCode(64)
        assert code.codeword_bits == 78
        assert code.check_bits == 14

    def test_secdaec_matches_secded_overhead_at_64(self):
        # The odd-weight construction needs no more check bits than
        # extended Hamming at the classic 64-bit word.
        assert SecDaecCode(64).codeword_bits == 72


class TestCorrection:
    @pytest.mark.parametrize("name", ALL_CODES)
    def test_clean_round_trip(self, name, rng):
        code = make_code(name, 16)
        data = rng.integers(0, 2, 16).astype(np.int8)
        decoded, status = code.decode(code.encode(data))
        assert status == "ok"
        assert np.array_equal(decoded, data)

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_every_single_error_corrected(self, name, rng):
        code = make_code(name, 16)
        data = rng.integers(0, 2, 16).astype(np.int8)
        codeword = code.encode(data)
        for position in range(code.codeword_bits):
            received = codeword.copy()
            received[position] ^= 1
            decoded, status = code.decode(received)
            assert status == "corrected", f"bit {position}: {status}"
            assert np.array_equal(decoded, data), f"failed at bit {position}"

    def test_bch_every_double_error_corrected(self, rng):
        code = BchCode(16)
        data = rng.integers(0, 2, 16).astype(np.int8)
        codeword = code.encode(data)
        n = code.codeword_bits
        for i in range(n):
            for j in range(i + 1, n):
                received = codeword.copy()
                received[i] ^= 1
                received[j] ^= 1
                decoded, status = code.decode(received)
                assert status == "corrected", f"bits ({i}, {j}): {status}"
                assert np.array_equal(decoded, data), f"bits ({i}, {j})"

    def test_secdaec_every_adjacent_double_corrected(self, rng):
        code = SecDaecCode(16)
        data = rng.integers(0, 2, 16).astype(np.int8)
        codeword = code.encode(data)
        for p in range(code.codeword_bits - 1):
            received = codeword.copy()
            received[p] ^= 1
            received[p + 1] ^= 1
            decoded, status = code.decode(received)
            assert status == "corrected", f"pair ({p}, {p + 1}): {status}"
            assert np.array_equal(decoded, data), f"pair ({p}, {p + 1})"

    def test_secded_non_adjacent_doubles_detected(self, rng):
        code = HammingSecDed(16)
        data = rng.integers(0, 2, 16).astype(np.int8)
        codeword = code.encode(data)
        n = code.codeword_bits
        for i in range(0, n, 3):
            for j in range(i + 2, n, 5):
                received = codeword.copy()
                received[i] ^= 1
                received[j] ^= 1
                _, status = code.decode(received)
                assert status == "detected"

    def test_secdaec_non_adjacent_doubles_never_silently_ok(self, rng):
        # Beyond the guarantee: a non-adjacent double is either detected
        # or aliases to a (wrong) correction — it must never report "ok".
        code = SecDaecCode(16)
        data = rng.integers(0, 2, 16).astype(np.int8)
        codeword = code.encode(data)
        n = code.codeword_bits
        for i in range(n):
            for j in range(i + 2, n):
                received = codeword.copy()
                received[i] ^= 1
                received[j] ^= 1
                _, status = code.decode(received)
                assert status in ("detected", "corrected")


class TestBlockScalarParity:
    """decode_block vs scalar decode, exhaustive over 0/1/2-flip patterns."""

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_encode_block_matches_scalar(self, name, rng):
        code = make_code(name, 8)
        data = rng.integers(0, 2, size=(40, 8)).astype(np.int8)
        block = code.encode_block(data)
        for i in range(data.shape[0]):
            assert np.array_equal(block[i], code.encode(data[i])), f"row {i}"

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_decode_block_parity_all_0_1_2_flips(self, name, rng):
        code = make_code(name, 8)
        n = code.codeword_bits
        data = rng.integers(0, 2, 8).astype(np.int8)
        codeword = code.encode(data)
        errors = _flip_patterns(n, max_flips=2)
        received = (codeword[None, :] ^ errors).astype(np.int8)
        block_data, block_status = code.decode_block(received)
        for i in range(received.shape[0]):
            scalar_data, scalar_status = code.decode(received[i])
            assert STATUS_MAP[scalar_status] == block_status[i], (
                f"{name}: pattern {i}: scalar {scalar_status} "
                f"vs block {block_status[i]}"
            )
            assert np.array_equal(scalar_data, block_data[i]), (
                f"{name}: pattern {i}: decoded data diverged"
            )

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_decode_block_parity_sampled_3_flips(self, name, rng):
        # 3 flips exceed every code's guarantee: the aliasing behaviour
        # (miscorrect vs detect) must still be bit-identical between the
        # block codec and the scalar reference.
        code = make_code(name, 8)
        n = code.codeword_bits
        data = rng.integers(0, 2, size=(200, 8)).astype(np.int8)
        codewords = code.encode_block(data)
        received = codewords.copy()
        for i in range(received.shape[0]):
            for p in rng.choice(n, size=3, replace=False):
                received[i, p] ^= 1
        block_data, block_status = code.decode_block(received)
        statuses = set()
        for i in range(received.shape[0]):
            scalar_data, scalar_status = code.decode(received[i])
            statuses.add(scalar_status)
            assert STATUS_MAP[scalar_status] == block_status[i], f"word {i}"
            assert np.array_equal(scalar_data, block_data[i]), f"word {i}"
        # Sanity: 3 flips do exercise the beyond-capability paths.
        assert "ok" not in statuses

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_block_shape_validation(self, name):
        code = make_code(name, 8)
        with pytest.raises(ValueError, match="shape"):
            code.encode_block(np.zeros((4, 9), dtype=np.int8))
        with pytest.raises(ValueError, match="shape"):
            code.decode_block(np.zeros((4, code.codeword_bits + 1),
                                       dtype=np.int8))
        with pytest.raises(ValueError, match="binary"):
            code.encode_block(np.full((4, 8), 2, dtype=np.int8))


class TestFailureProbability:
    @pytest.mark.parametrize("name", ALL_CODES)
    def test_monotone_in_ber(self, name):
        code = make_code(name, 32)
        probs = [code.word_failure_probability(b)
                 for b in (1e-7, 1e-5, 1e-3, 1e-1)]
        assert probs == sorted(probs)
        assert all(0.0 <= p <= 1.0 for p in probs)

    def test_bch_beats_secded_at_same_ber(self):
        # t=2 must give a strictly smaller residual failure probability
        # than t=1 at small BER, despite the longer codeword.
        bch = make_code("bch", 64)
        secded = make_code("secded", 64)
        for ber in (1e-6, 1e-5, 1e-4):
            assert bch.word_failure_probability(ber) < (
                secded.word_failure_probability(ber)
            )

    def test_secdaec_between_secded_and_bch(self):
        # Correcting adjacent doubles buys a small margin over SEC-DED
        # but nowhere near full t=2.
        ber = 1e-4
        secded = make_code("secded", 64).word_failure_probability(ber)
        secdaec = make_code("secdaec", 64).word_failure_probability(ber)
        bch = make_code("bch", 64).word_failure_probability(ber)
        assert bch < secdaec < secded

    @pytest.mark.parametrize("name", ALL_CODES)
    def test_monte_carlo_agrees_with_analytic(self, name, rng):
        # At a BER big enough for decent MC statistics the empirical
        # failure rate must straddle the analytic prediction.
        from repro.testing.ecc import _mc_block

        code = make_code(name, 32)
        ber = 0.01
        failed = _mc_block(20000, rng, code, ber)
        empirical = float(np.mean(failed))
        analytic = code.word_failure_probability(ber)
        # Aliasing beyond capability can only push the empirical rate off
        # the guaranteed-capability analytic value by a modest factor.
        assert empirical == pytest.approx(analytic, rel=0.35)
