"""Tests for the DIVA PIM offload model ([33, 34])."""

import pytest

from repro.core.diva import (
    DIVAParams,
    DIVASystem,
    ExecutionEstimate,
    Kernel,
    KernelShape,
)


@pytest.fixture
def system():
    return DIVASystem()


class TestEstimates:
    def test_host_moves_all_data(self, system):
        shape = KernelShape(elements=1 << 20, result_elements=1)
        host = system.host_estimate(Kernel.REDUCTION, shape)
        assert host.bytes_moved >= shape.elements * system.params.element_bytes

    def test_pim_moves_command_and_result_only(self, system):
        shape = KernelShape(elements=1 << 20, result_elements=1)
        pim = system.pim_estimate(Kernel.REDUCTION, shape)
        assert pim.bytes_moved == system.params.command_bytes + 4

    def test_costs_positive(self, system):
        shape = KernelShape(elements=1024, result_elements=1024)
        for est in (
            system.host_estimate(Kernel.VECTOR_ADD, shape),
            system.pim_estimate(Kernel.VECTOR_ADD, shape),
        ):
            assert est.energy > 0 and est.latency > 0

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            KernelShape(elements=0, result_elements=0)


class TestOffloadDecision:
    def test_data_parallel_kernels_offload(self, system):
        shape = KernelShape(elements=1 << 16, result_elements=1)
        assert system.should_offload(Kernel.REDUCTION, shape)
        assert system.speedup(Kernel.REDUCTION, shape) > 1

    def test_pointer_chase_stays_on_host(self, system):
        """Serial, latency-bound work is PIM-hostile: one slow block does
        all the work."""
        shape = KernelShape(elements=1 << 16, result_elements=1 << 16)
        assert not system.should_offload(Kernel.POINTER_CHASE, shape)

    def test_energy_win_scales_with_data_to_result_ratio(self, system):
        small = system.energy_ratio(
            Kernel.REDUCTION, KernelShape(elements=1 << 10, result_elements=1)
        )
        large = system.energy_ratio(
            Kernel.REDUCTION, KernelShape(elements=1 << 20, result_elements=1)
        )
        assert large > 10 * small

    def test_workload_report(self, system):
        rows = system.workload_report([1024, 65536])
        assert len(rows) == len(Kernel) * 2
        offloaded = {r["kernel"] for r in rows if r["offload"]}
        assert "reduction" in offloaded
        assert "pointer_chase" not in offloaded


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            DIVAParams(pim_blocks=0)
        with pytest.raises(ValueError):
            DIVAParams(host_bus_bandwidth=0)

    def test_more_blocks_more_speedup(self):
        shape = KernelShape(elements=1 << 18, result_elements=1)
        few = DIVASystem(DIVAParams(pim_blocks=2))
        many = DIVASystem(DIVAParams(pim_blocks=16))
        assert many.speedup(Kernel.VMM, shape) > few.speedup(
            Kernel.VMM, shape
        )
