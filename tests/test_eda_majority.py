"""Tests for majority-logic (ReVAMP-style) technology mapping."""

import pytest

from repro.eda.aig import aig_from_truth_table
from repro.eda.boolean import TruthTable
from repro.eda.majority_mapping import map_mig_to_majority
from repro.eda.mig import MIG, mig_from_truth_table


def _exhaustive_check(mig, mapping):
    n = mig.n_inputs
    for m in range(1 << n):
        inputs = [(m >> i) & 1 for i in range(n)]
        if mapping.execute(inputs) != mig.simulate(inputs):
            return False
    return True


class TestDelayOptimal:
    @pytest.mark.parametrize("n_vars", [2, 3, 4])
    def test_random_functions_verified(self, n_vars, rng):
        for _ in range(6):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            mig = mig_from_truth_table(table)
            mapping = map_mig_to_majority(mig)
            assert _exhaustive_check(mig, mapping)

    def test_delay_equals_levels_plus_one(self, rng):
        """[67]: delay-optimal mapping achieves MIG levels + 1 when the
        device count is unconstrained."""
        for _ in range(8):
            table = TruthTable(4, int(rng.integers(1, (1 << 16) - 1)))
            mig = mig_from_truth_table(table)
            mapping = map_mig_to_majority(mig)
            assert mapping.delay == mig.levels() + 1

    def test_nodes_at_same_level_share_a_step(self):
        mig = MIG(4)
        a, b, c, d = (mig.input_lit(i) for i in range(4))
        mig.add_output(mig.and_(a, b))
        mig.add_output(mig.or_(c, d))
        mapping = map_mig_to_majority(mig)
        times = {s.time for s in mapping.steps}
        assert times == {1}
        assert mapping.delay == 2

    def test_device_per_signal(self):
        mig = mig_from_truth_table(
            TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        )
        mapping = map_mig_to_majority(mig)
        assert mapping.area == 1 + mig.n_inputs + mig.n_nodes


class TestDeviceConstrained:
    def test_sequential_mapping_verified(self, rng):
        for _ in range(5):
            table = TruthTable(3, int(rng.integers(0, 256)))
            mig = mig_from_truth_table(table)
            mapping = map_mig_to_majority(mig, max_devices=mig.n_inputs + 8)
            assert _exhaustive_check(mig, mapping)

    def test_reuse_reduces_devices(self):
        mig = MIG(8)
        acc = mig.input_lit(0)
        for i in range(1, 8):
            acc = mig.and_(acc, mig.input_lit(i))
        mig.add_output(acc)
        unconstrained = map_mig_to_majority(mig)
        constrained = map_mig_to_majority(mig, max_devices=12)
        assert constrained.area < unconstrained.area
        assert _exhaustive_check(mig, constrained)

    def test_constrained_is_slower(self):
        mig = MIG(4)
        a, b, c, d = (mig.input_lit(i) for i in range(4))
        mig.add_output(mig.and_(a, b))
        mig.add_output(mig.and_(c, d))
        fast = map_mig_to_majority(mig)
        slow = map_mig_to_majority(mig, max_devices=10)
        assert slow.delay > fast.delay

    def test_infeasible_budget_rejected(self):
        mig = mig_from_truth_table(
            TruthTable.from_function(3, lambda a, b, c: a & b & c)
        )
        with pytest.raises(ValueError, match="max_devices"):
            map_mig_to_majority(mig, max_devices=2)


class TestScheduleValidation:
    def test_causality_enforced(self):
        """Tampering with a step's time trips the execution check."""
        mig = mig_from_truth_table(
            TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        )
        mapping = map_mig_to_majority(mig)
        deep_step = max(mapping.steps, key=lambda s: s.time)
        if deep_step.time > 1:
            from dataclasses import replace

            bad = replace(deep_step, time=1)
            mapping.steps[mapping.steps.index(deep_step)] = bad
            with pytest.raises(RuntimeError, match="schedule violation"):
                mapping.execute([0, 0, 0])
