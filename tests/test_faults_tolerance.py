"""Tests for fault-tolerance schemes (retraining [38], remapping [43])."""

import numpy as np
import pytest

from repro.apps.datasets import gaussian_blobs
from repro.apps.nn import MLP, CrossbarMLP
from repro.faults.tolerance import (
    RowRemapRepair,
    fault_aware_retrain,
)


@pytest.fixture(scope="module")
def faulty_deployment():
    x, y = gaussian_blobs(
        n_samples=400, n_features=16, n_classes=6, separation=1.5, rng=0
    )
    mlp = MLP([16, 12, 6], rng=1)
    mlp.train(x[:280], y[:280], epochs=60, rng=2)
    deployed = CrossbarMLP(mlp, calibration=x[:280], rng=3)
    clean = deployed.accuracy(x[280:], y[280:], noisy=False)
    deployed.inject_yield_faults(0.8, rng=4)
    return deployed, x, y, clean


class TestFaultIntrospection:
    def test_masks_match_stuck_cells(self, faulty_deployment):
        deployed, *_ = faulty_deployment
        masks = deployed.layer_fault_masks()
        assert len(masks) == len(deployed.layers)
        # ~20% cell faults, differential pairs double the exposure.
        assert 0.2 < masks[0].mean() < 0.6

    def test_effective_weights_deviate_where_masked(self, faulty_deployment):
        deployed, *_ = faulty_deployment
        masks = deployed.layer_fault_masks()
        effective = deployed.effective_weights()
        for w_true, w_eff, mask in zip(
            deployed.mlp.weights, effective, masks
        ):
            # Healthy weights decode back to the trained values.
            healthy_err = np.abs(w_eff[~mask] - w_true[~mask])
            assert healthy_err.max() < 1e-6
            # Faulty weights deviate.
            if mask.any():
                assert np.abs(w_eff[mask] - w_true[mask]).max() > 0.01

    def test_reprogram_shape_checked(self, faulty_deployment):
        deployed, *_ = faulty_deployment
        with pytest.raises(ValueError):
            deployed.reprogram([np.zeros((2, 2))])


class TestFaultAwareRetraining:
    def test_recovers_most_of_the_drop(self, faulty_deployment):
        """The [38] result: retraining around frozen faulty weights
        recovers a large share of the yield-induced accuracy loss."""
        deployed, x, y, clean = faulty_deployment
        report = fault_aware_retrain(
            deployed, x[:280], y[:280], x[280:], y[280:], epochs=40, rng=5
        )
        drop = clean - report.accuracy_before
        assert drop > 0.15                       # the fault hit was real
        assert report.recovered > drop * 0.5     # most of it comes back
        assert report.accuracy_after > 0.8

    def test_frozen_fraction_reported(self, faulty_deployment):
        deployed, x, y, _ = faulty_deployment
        report = fault_aware_retrain(
            deployed, x[:280], y[:280], x[280:], y[280:], epochs=5, rng=6
        )
        assert len(report.frozen_fraction) == 2
        assert all(0 < f < 1 for f in report.frozen_fraction)

    def test_validation(self, faulty_deployment):
        deployed, x, y, _ = faulty_deployment
        with pytest.raises(ValueError):
            fault_aware_retrain(
                deployed, x[:10], y[:10], x[:10], y[:10], epochs=0
            )


class TestNoiseAwareTraining:
    """[42]-style variation-aware training."""

    @pytest.fixture(scope="class")
    def models(self):
        from repro.faults.tolerance import noise_aware_train

        x, y = gaussian_blobs(
            n_samples=400, n_features=16, n_classes=6, separation=1.5, rng=0
        )
        baseline = MLP([16, 12, 6], rng=1)
        baseline.train(x[:280], y[:280], epochs=60, rng=2)
        hardened = MLP([16, 12, 6], rng=1)
        noise_aware_train(
            hardened, x[:280], y[:280],
            weight_noise_sigma=0.5, epochs=60, rng=2,
        )
        return baseline, hardened, x, y

    @staticmethod
    def _noisy_accuracy(model, x, y, sigma, trials=30):
        gen = np.random.default_rng(9)
        accs = []
        for _ in range(trials):
            saved = [w.copy() for w in model.weights]
            for w in model.weights:
                w *= np.exp(sigma * gen.standard_normal(w.shape))
            accs.append(model.accuracy(x, y))
            for k, s in enumerate(saved):
                model.weights[k] = s
        return float(np.mean(accs))

    def test_hardened_model_more_robust(self, models):
        baseline, hardened, x, y = models
        b = self._noisy_accuracy(baseline, x[280:], y[280:], sigma=0.5)
        h = self._noisy_accuracy(hardened, x[280:], y[280:], sigma=0.5)
        assert h > b + 0.03

    def test_clean_accuracy_cost_bounded(self, models):
        """Robustness costs some clean accuracy — but not much."""
        baseline, hardened, x, y = models
        b = baseline.accuracy(x[280:], y[280:])
        h = hardened.accuracy(x[280:], y[280:])
        assert h > b - 0.15

    def test_validation(self):
        from repro.faults.tolerance import noise_aware_train

        with pytest.raises(ValueError):
            noise_aware_train(
                MLP([4, 2], rng=0),
                np.zeros((4, 4)),
                np.zeros(4, dtype=int),
                weight_noise_sigma=-0.1,
            )


class TestRowRemapRepair:
    def test_plans_worst_rows_first(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2, :5] = True   # 5 faults
        mask[6, :2] = True   # 2 faults
        repair = RowRemapRepair(n_spare=1)
        assert repair.plan(mask) == [2]

    def test_repair_rate(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2, :5] = True
        mask[6, :2] = True
        repair = RowRemapRepair(n_spare=2)
        assert repair.repaired_fault_count(mask) == 0
        assert repair.repair_rate(mask) == 1.0
        half = RowRemapRepair(n_spare=1)
        assert half.repair_rate(mask) == pytest.approx(5 / 7)

    def test_no_spares_no_repair(self):
        mask = np.ones((4, 4), dtype=bool)
        repair = RowRemapRepair(n_spare=0)
        assert repair.plan(mask) == []
        assert repair.repair_rate(mask) == 0.0

    def test_clean_array_trivially_repaired(self):
        assert RowRemapRepair(n_spare=2).repair_rate(np.zeros((4, 4), bool)) == 1.0

    def test_negative_spares_rejected(self):
        with pytest.raises(ValueError):
            RowRemapRepair(n_spare=-1)
