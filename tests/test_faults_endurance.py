"""Tests for the endurance wear-out model."""

import math

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.faults.endurance import EnduranceModel, EnduranceSimulator


def _array(seed=0, n=16):
    array = CrossbarArray(CrossbarConfig(rows=n, cols=n), rng=seed)
    array.program(np.full((n, n), 5e-5))
    return array


class TestEnduranceModel:
    def test_failure_probability_monotone(self):
        model = EnduranceModel(characteristic_life=1e4, shape=2.0)
        probs = [model.failure_probability(w) for w in (0, 1e3, 1e4, 1e5)]
        assert probs == sorted(probs)
        assert probs[0] == 0.0

    def test_characteristic_life_definition(self):
        """At the characteristic life, 63.2% of cells have failed."""
        model = EnduranceModel(characteristic_life=1e4, shape=2.0)
        assert model.failure_probability(1e4) == pytest.approx(
            1 - math.exp(-1), rel=1e-9
        )

    def test_sample_lifetimes_positive(self):
        model = EnduranceModel()
        lifetimes = model.sample_lifetimes(1000, rng=0)
        assert np.all(lifetimes >= 0)
        assert lifetimes.shape == (1000,)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EnduranceModel(characteristic_life=0)
        with pytest.raises(ValueError):
            EnduranceModel(shape=-1)


class TestEnduranceSimulator:
    def test_deaths_accumulate_monotonically(self):
        sim = EnduranceSimulator(
            _array(), EnduranceModel(characteristic_life=1000, shape=2.0), rng=1
        )
        series = sim.run_until(total_writes=3000, step=500)
        dead = [row["dead_cells"] for row in series]
        assert dead == sorted(dead)
        assert dead[-1] > 0

    def test_all_cells_eventually_die(self):
        sim = EnduranceSimulator(
            _array(n=8), EnduranceModel(characteristic_life=100, shape=2.0), rng=2
        )
        sim.run_until(total_writes=10_000, step=1000)
        assert sim.dead_cell_count == 64

    def test_dead_cells_are_stuck_at_extremes(self):
        array = _array(n=8)
        sim = EnduranceSimulator(
            array, EnduranceModel(characteristic_life=100, shape=2.0), rng=3
        )
        sim.run_until(total_writes=10_000, step=1000)
        levels = array.config.levels
        g = array.conductances()
        assert np.all(
            (np.isclose(g, levels.g_min)) | (np.isclose(g, levels.g_max))
        )

    def test_death_fraction_tracks_weibull(self):
        """Empirical dead fraction ~ the analytic CDF."""
        model = EnduranceModel(characteristic_life=1000, shape=2.0)
        sim = EnduranceSimulator(_array(n=32), model, rng=4)
        sim.run_until(total_writes=1000, step=1000)
        expected = model.failure_probability(1000)
        actual = sim.dead_cell_count / (32 * 32)
        assert actual == pytest.approx(expected, abs=0.05)

    def test_new_faults_returned_once(self):
        sim = EnduranceSimulator(
            _array(n=8), EnduranceModel(characteristic_life=10, shape=2.0), rng=5
        )
        first = sim.cycle(1000)
        second = sim.cycle(1000)
        assert len(first) > 0
        first_cells = {(f.row, f.col) for f in first}
        second_cells = {(f.row, f.col) for f in second}
        assert not first_cells & second_cells


class TestWear:
    """Per-cell (non-uniform) cycling via EnduranceSimulator.wear."""

    def _sim(self, n=8, life=100, rng=2):
        return EnduranceSimulator(
            _array(n=n),
            EnduranceModel(characteristic_life=life, shape=2.0),
            rng=rng,
        )

    def test_shape_mismatch_rejected(self):
        sim = self._sim()
        with pytest.raises(ValueError, match="shape"):
            sim.wear(np.ones((4, 4)))

    def test_negative_writes_rejected(self):
        sim = self._sim()
        writes = np.zeros((8, 8))
        writes[0, 0] = -1.0
        with pytest.raises(ValueError, match=">= 0"):
            sim.wear(writes)

    def test_zero_writes_is_a_noop(self):
        sim = self._sim()
        energy_before = sim.costs.total.energy
        assert sim.wear(np.zeros((8, 8))) == []
        assert sim.dead_cell_count == 0
        assert sim.costs.total.energy == energy_before

    def test_energy_charged_for_total_pulses(self):
        sim = self._sim(life=10**9)
        writes = np.zeros((8, 8))
        writes[0, :] = 5.0
        sim.wear(writes)
        assert sim.costs.total.energy > 0

    def test_only_heavily_written_cells_die(self):
        sim = self._sim(life=100, rng=3)
        writes = np.zeros((8, 8))
        writes[:4, :] = 10_000.0  # far past any sampled lifetime
        faults = sim.wear(writes)
        assert faults
        assert all(f.row < 4 for f in faults)
        # The untouched half of the array must be fully alive.
        assert sim.dead_cell_count == len(faults) <= 32

    def test_uniform_wear_matches_cycle(self):
        a = self._sim(life=100, rng=7)
        b = self._sim(life=100, rng=7)
        dead_a = a.wear(np.full((8, 8), 500.0))
        dead_b = b.cycle(500.0)
        assert {(f.row, f.col) for f in dead_a} == {
            (f.row, f.col) for f in dead_b
        }
        assert a.costs.total.energy == pytest.approx(b.costs.total.energy)
