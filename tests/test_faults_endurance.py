"""Tests for the endurance wear-out model."""

import math

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.faults.endurance import EnduranceModel, EnduranceSimulator


def _array(seed=0, n=16):
    array = CrossbarArray(CrossbarConfig(rows=n, cols=n), rng=seed)
    array.program(np.full((n, n), 5e-5))
    return array


class TestEnduranceModel:
    def test_failure_probability_monotone(self):
        model = EnduranceModel(characteristic_life=1e4, shape=2.0)
        probs = [model.failure_probability(w) for w in (0, 1e3, 1e4, 1e5)]
        assert probs == sorted(probs)
        assert probs[0] == 0.0

    def test_characteristic_life_definition(self):
        """At the characteristic life, 63.2% of cells have failed."""
        model = EnduranceModel(characteristic_life=1e4, shape=2.0)
        assert model.failure_probability(1e4) == pytest.approx(
            1 - math.exp(-1), rel=1e-9
        )

    def test_sample_lifetimes_positive(self):
        model = EnduranceModel()
        lifetimes = model.sample_lifetimes(1000, rng=0)
        assert np.all(lifetimes >= 0)
        assert lifetimes.shape == (1000,)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EnduranceModel(characteristic_life=0)
        with pytest.raises(ValueError):
            EnduranceModel(shape=-1)


class TestEnduranceSimulator:
    def test_deaths_accumulate_monotonically(self):
        sim = EnduranceSimulator(
            _array(), EnduranceModel(characteristic_life=1000, shape=2.0), rng=1
        )
        series = sim.run_until(total_writes=3000, step=500)
        dead = [row["dead_cells"] for row in series]
        assert dead == sorted(dead)
        assert dead[-1] > 0

    def test_all_cells_eventually_die(self):
        sim = EnduranceSimulator(
            _array(n=8), EnduranceModel(characteristic_life=100, shape=2.0), rng=2
        )
        sim.run_until(total_writes=10_000, step=1000)
        assert sim.dead_cell_count == 64

    def test_dead_cells_are_stuck_at_extremes(self):
        array = _array(n=8)
        sim = EnduranceSimulator(
            array, EnduranceModel(characteristic_life=100, shape=2.0), rng=3
        )
        sim.run_until(total_writes=10_000, step=1000)
        levels = array.config.levels
        g = array.conductances()
        assert np.all(
            (np.isclose(g, levels.g_min)) | (np.isclose(g, levels.g_max))
        )

    def test_death_fraction_tracks_weibull(self):
        """Empirical dead fraction ~ the analytic CDF."""
        model = EnduranceModel(characteristic_life=1000, shape=2.0)
        sim = EnduranceSimulator(_array(n=32), model, rng=4)
        sim.run_until(total_writes=1000, step=1000)
        expected = model.failure_probability(1000)
        actual = sim.dead_cell_count / (32 * 32)
        assert actual == pytest.approx(expected, abs=0.05)

    def test_new_faults_returned_once(self):
        sim = EnduranceSimulator(
            _array(n=8), EnduranceModel(characteristic_life=10, shape=2.0), rng=5
        )
        first = sim.cycle(1000)
        second = sim.cycle(1000)
        assert len(first) > 0
        first_cells = {(f.row, f.col) for f in first}
        second_cells = {(f.row, f.col) for f in second}
        assert not first_cells & second_cells
