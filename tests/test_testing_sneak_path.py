"""Tests for sneak-path group testing ([46])."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.faults.injection import FaultInjector
from repro.testing.march import march_c_star
from repro.testing.sneak_path_test import SneakPathTester


def _programmed_array(n=16, seed=0):
    array = CrossbarArray(CrossbarConfig(rows=n, cols=n), rng=seed)
    reference = np.full((n, n), 5e-5)
    array.program(reference)
    return array, reference


class TestProbePattern:
    def test_every_row_and_column_probed(self):
        array, _ = _programmed_array(n=12)
        probes = SneakPathTester(array).probe_pattern()
        assert {r for r, _ in probes} == set(range(12))
        assert {c for _, c in probes} == set(range(12))

    def test_stride_reduces_probes(self):
        array, _ = _programmed_array(n=16)
        tester = SneakPathTester(array)
        assert tester.measurement_count(stride=4) < tester.measurement_count(stride=1)

    def test_stride_validated(self):
        array, _ = _programmed_array(n=8)
        with pytest.raises(ValueError, match="stride"):
            SneakPathTester(array).probe_pattern(stride=0)


class TestCleanArray:
    def test_no_flags_on_fault_free_array(self):
        array, reference = _programmed_array()
        report = SneakPathTester(array).run(reference)
        assert not report.fault_detected
        assert report.detection_rate(set()) == 1.0


class TestFaultDetection:
    def test_detects_stuck_faults(self):
        array, reference = _programmed_array()
        injector = FaultInjector(array, rng=1)
        injector.inject_exact_count(5)
        report = SneakPathTester(array).run(reference)
        assert report.fault_detected

    def test_region_of_detection_catches_all_faults(self):
        """With every line probed, every fault lies in some region of
        detection and perturbs at least one probe measurably."""
        array, reference = _programmed_array(n=24)
        injector = FaultInjector(array, rng=2)
        injector.inject_exact_count(8)
        report = SneakPathTester(array).run(reference)
        rate = report.detection_rate(injector.fault_map.cells())
        assert rate == 1.0

    def test_single_fault_region(self):
        array, reference = _programmed_array(n=8)
        array.stick_cell(3, 3, 1e-6)
        report = SneakPathTester(array).run(reference)
        assert (3, 3) in report.suspect_cells

    def test_group_testing_one_probe_covers_whole_line(self):
        """A fault far from any probe cell is still seen through the
        shared wordline — the parallelism the method is built on."""
        array, reference = _programmed_array(n=8)
        array.stick_cell(2, 6, 1e-6)   # not a probe cell itself
        report = SneakPathTester(array).run(reference)
        assert report.fault_detected
        assert (2, 6) in report.suspect_cells


class TestParallelismAndScaling:
    def test_fewer_measurements_than_march(self):
        """The point of the method: group testing beats cell-by-cell."""
        array, reference = _programmed_array(n=32)
        tester = SneakPathTester(array)
        sneak_measurements = tester.measurement_count()
        march_operations = march_c_star().operations_per_cell * 32 * 32
        assert sneak_measurements < march_operations / 100

    def test_linear_scaling_with_array_side(self):
        """Measurements grow linearly with the side length; the paper's
        complaint is that this is still linear growth, 'remaining
        unacceptably high for on-line test'."""
        counts = []
        for n in (16, 32, 64):
            array, _ = _programmed_array(n=n)
            counts.append(SneakPathTester(array).measurement_count())
        assert counts[1] == pytest.approx(2 * counts[0], rel=0.2)
        assert counts[2] == pytest.approx(2 * counts[1], rel=0.2)

    def test_test_time_reported(self):
        array, reference = _programmed_array(n=8)
        report = SneakPathTester(array).run(reference)
        assert report.test_time == pytest.approx(
            len(report.probes) * report.read_time
        )


class TestValidation:
    def test_reference_shape_checked(self):
        array, _ = _programmed_array(n=8)
        with pytest.raises(ValueError, match="reference"):
            SneakPathTester(array).run(np.zeros((4, 4)))
