"""Tests for the VTEAM threshold memristor model."""

import pytest

from repro.devices.memristor import VTEAMMemristor, VTEAMParams


class TestThresholdBehaviour:
    def test_subthreshold_reads_are_nondestructive(self):
        """The model's defining feature — and the reason ReRAM read
        voltages sit far below write voltages."""
        dev = VTEAMMemristor(x0=0.5)
        for _ in range(10_000):
            dev.step(0.2, dt=1e-6)   # read-level voltage
        assert dev.state == pytest.approx(0.5)

    def test_over_threshold_set(self):
        dev = VTEAMMemristor(x0=0.2)
        dev.apply_voltage(1.5, duration=1e-3)
        assert dev.state > 0.2

    def test_over_threshold_reset(self):
        dev = VTEAMMemristor(x0=0.8)
        dev.apply_voltage(-1.5, duration=1e-3)
        assert dev.state < 0.8

    def test_derivative_zero_in_window(self):
        dev = VTEAMMemristor()
        p = dev.params
        assert dev.state_derivative(0.0) == 0.0
        assert dev.state_derivative(p.v_off * 0.99) == 0.0
        assert dev.state_derivative(p.v_on * 0.99) == 0.0

    def test_derivative_signs(self):
        dev = VTEAMMemristor(x0=0.5)
        assert dev.state_derivative(1.5) > 0
        assert dev.state_derivative(-1.5) < 0

    def test_switching_highly_nonlinear_in_voltage(self):
        """Doubling overdrive speeds switching far more than 2x (the
        alpha exponent)."""
        slow = VTEAMMemristor(x0=0.5).state_derivative(0.8)
        fast = VTEAMMemristor(x0=0.5).state_derivative(1.6)
        assert fast > 8 * slow

    def test_is_read_safe(self):
        dev = VTEAMMemristor()
        assert dev.is_read_safe(0.2)
        assert dev.is_read_safe(-0.2)
        assert not dev.is_read_safe(1.0)

    def test_state_bounded(self):
        dev = VTEAMMemristor(x0=0.9)
        dev.apply_voltage(3.0, duration=10e-3)
        assert dev.state <= 1.0
        dev.apply_voltage(-3.0, duration=20e-3)
        assert dev.state >= 0.0


class TestResistance:
    def test_resistance_interpolation(self):
        p = VTEAMParams()
        assert VTEAMMemristor(p, x0=1.0).resistance == pytest.approx(p.r_on)
        assert VTEAMMemristor(p, x0=0.0).resistance == pytest.approx(p.r_off)

    def test_conductance_reciprocal(self):
        dev = VTEAMMemristor(x0=0.3)
        assert dev.conductance == pytest.approx(1 / dev.resistance)

    def test_ohmic_current(self):
        dev = VTEAMMemristor(x0=0.5)
        assert dev.current(0.2) == pytest.approx(0.2 / dev.resistance)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            VTEAMParams(v_on=0.5)
        with pytest.raises(ValueError):
            VTEAMParams(k_on=100)
        with pytest.raises(ValueError):
            VTEAMParams(r_on=2e4, r_off=1e4)
        with pytest.raises(ValueError):
            VTEAMParams(alpha_off=0)

    def test_contrast_with_linear_drift(self):
        """Linear drift moves at any voltage; VTEAM does not — the
        modelling choice the guard-band design depends on."""
        from repro.devices.memristor import LinearIonDriftMemristor

        linear = LinearIonDriftMemristor(x0=0.5)
        vteam = VTEAMMemristor(x0=0.5)
        for _ in range(1000):
            linear.step(0.2, dt=1e-5)
            vteam.step(0.2, dt=1e-5)
        assert linear.state > 0.5          # drifted under read voltage
        assert vteam.state == pytest.approx(0.5)


class TestFastPulseKernel:
    """backend="fast" pulse stepping must be bit-equal to the scalar
    reference (and trivially exact for sub-threshold pulses)."""

    def test_set_reset_pulses_bit_equal(self):
        from repro.devices.memristor import VTEAMMemristor

        for v in (1.0, 0.9, -1.0, -2.0, 0.7, -0.7):
            for x0 in (0.0, 0.25, 0.5, 1.0):
                ref = VTEAMMemristor(x0=x0)
                fast = VTEAMMemristor(x0=x0)
                ref.apply_voltage(v, duration=5e-4, dt=1e-6, backend="scalar")
                fast.apply_voltage(v, duration=5e-4, dt=1e-6, backend="fast")
                assert fast.state == ref.state, (v, x0)

    def test_subthreshold_pulse_is_a_noop_both_ways(self):
        from repro.devices.memristor import VTEAMMemristor

        ref = VTEAMMemristor(x0=0.4)
        fast = VTEAMMemristor(x0=0.4)
        ref.apply_voltage(0.3, duration=1e-3, backend="scalar")
        fast.apply_voltage(0.3, duration=1e-3, backend="fast")
        assert ref.state == 0.4 and fast.state == 0.4

    def test_long_saturating_pulse_bit_equal(self):
        from repro.devices.memristor import VTEAMMemristor

        ref = VTEAMMemristor(x0=0.1)
        fast = VTEAMMemristor(x0=0.1)
        ref.apply_voltage(1.4, duration=0.02, dt=1e-6, backend="scalar")
        fast.apply_voltage(1.4, duration=0.02, dt=1e-6, backend="fast")
        assert fast.state == ref.state

    def test_unknown_backend_rejected(self):
        from repro.devices.memristor import VTEAMMemristor

        with pytest.raises(ValueError, match="backend"):
            VTEAMMemristor().apply_voltage(1.0, 1e-4, backend="gpu")
