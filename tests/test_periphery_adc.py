"""Tests for the SAR ADC model."""

import numpy as np
import pytest

from repro.periphery.adc import ADC, ADCConfig


class TestQuantization:
    def test_full_scale_codes(self):
        adc = ADC(ADCConfig(bits=4, v_min=0, v_max=1))
        assert adc.quantize(0.0) == 0
        assert adc.quantize(1.0) == adc.levels - 1

    def test_clipping(self):
        adc = ADC(ADCConfig(bits=4))
        assert adc.quantize(-5.0) == 0
        assert adc.quantize(5.0) == adc.levels - 1

    def test_monotonic(self):
        adc = ADC(ADCConfig(bits=6))
        codes = adc.quantize_array(np.linspace(0, 1, 200))
        assert np.all(np.diff(codes) >= 0)

    def test_vectorized_matches_scalar(self):
        adc = ADC(ADCConfig(bits=8))
        values = np.linspace(0, 1, 37)
        vec = adc.quantize_array(values)
        scalar = np.array([adc.quantize(v) for v in values])
        assert np.array_equal(vec, scalar)

    def test_reconstruction_error_bounded_by_lsb(self):
        adc = ADC(ADCConfig(bits=8))
        values = np.linspace(0, 1 - 1e-9, 1000)
        errors = np.abs(adc.quantization_error(values))
        assert np.max(errors) <= adc.lsb / 2 + 1e-12

    def test_rms_error_matches_theory(self):
        """In-range uniform input: RMS error = LSB / sqrt(12)."""
        adc = ADC(ADCConfig(bits=8))
        values = np.linspace(0, 1 - 1e-9, 100_000)
        assert adc.rms_quantization_error(values) == pytest.approx(
            adc.lsb / np.sqrt(12), rel=0.02
        )

    def test_error_shrinks_with_resolution(self):
        """Section II-E: quantization error grows as resolution drops."""
        values = np.linspace(0, 1, 10_001)
        e4 = ADC(ADCConfig(bits=4)).rms_quantization_error(values)
        e8 = ADC(ADCConfig(bits=8)).rms_quantization_error(values)
        assert e8 < e4 / 10


class TestSarTrace:
    def test_trace_assembles_to_code(self):
        adc = ADC(ADCConfig(bits=8))
        for value in (0.0, 0.123, 0.5, 0.87, 1.0):
            trace = adc.sar_trace(value)
            code = sum(1 << bit for bit, _, kept in trace if kept)
            assert code == adc.quantize(value)

    def test_trace_length_equals_bits(self):
        adc = ADC(ADCConfig(bits=6))
        assert len(adc.sar_trace(0.3)) == 6

    def test_trace_msb_first(self):
        adc = ADC(ADCConfig(bits=4))
        bits = [b for b, _, _ in adc.sar_trace(0.5)]
        assert bits == [3, 2, 1, 0]


class TestCostScaling:
    def test_power_doubles_per_bit(self):
        """Walden FoM scaling: energy ~ 2^bits."""
        p6 = ADC(ADCConfig(bits=6)).power
        p7 = ADC(ADCConfig(bits=7)).power
        assert p7 == pytest.approx(2 * p6)

    def test_area_doubles_per_bit(self):
        a6 = ADC(ADCConfig(bits=6)).area
        a7 = ADC(ADCConfig(bits=7)).area
        assert a7 == pytest.approx(2 * a6)

    def test_isaac_calibration_point(self):
        """8-bit 1.28 GS/s ~ 2 mW / 0.0012 mm^2 (the ISAAC table entry)."""
        adc = ADC(ADCConfig(bits=8))
        assert adc.power == pytest.approx(2e-3, rel=0.05)
        assert adc.area == pytest.approx(1.2e-3, rel=0.05)

    def test_latency_from_sample_rate(self):
        adc = ADC(ADCConfig(sample_rate=1e9))
        assert adc.latency == pytest.approx(1e-9)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ADCConfig(bits=0)
        with pytest.raises(ValueError):
            ADCConfig(v_min=1.0, v_max=0.5)
