"""Tests for in-situ training (repro.workloads.training)."""

import numpy as np
import pytest

from repro.devices.reram import ConductanceLevels, ReRAMCell, ReRAMCellParams
from repro.devices.variability import (
    DriftModel,
    ReadNoiseModel,
    VariabilityStack,
    WriteVariationModel,
)
from repro.workloads.training import (
    InSituDense,
    InSituTrainer,
    TrainingParams,
    explore_training,
    outer_product_delta,
    train_insitu,
)


class TestOuterProductDelta:
    def test_fast_bit_equal_to_scalar(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (16, 12))
        d = rng.normal(size=(16, 5))
        assert np.array_equal(
            outer_product_delta(x, d, "fast"),
            outer_product_delta(x, d, "scalar"),
        )

    def test_matches_matrix_product(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, (8, 4))
        d = rng.normal(size=(8, 3))
        assert np.allclose(outer_product_delta(x, d), x.T @ d)

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            outer_product_delta(np.zeros((2, 2)), np.zeros((2, 2)), "gpu")

    def test_mismatched_batch_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            outer_product_delta(np.zeros((2, 2)), np.zeros((3, 2)))


class TestInSituDense:
    def test_targets_on_conductance_ladder(self):
        params = TrainingParams(n_features=6, n_classes=3)
        layer = InSituDense(params, rng=0, write_rng=1)
        gp, gn = layer.targets()
        ladder = layer.levels.targets()
        for g in (gp, gn):
            dist = np.min(np.abs(g[..., None] - ladder[None, None]), axis=-1)
            assert np.all(dist < 1e-12)

    def test_forward_tracks_shadow_weights(self):
        # With fresh devices (no noise/faults/drift yet) the analog
        # forward must agree with the shadow weights up to ladder
        # quantization.
        params = TrainingParams(n_features=8, n_classes=4, n_levels=64)
        layer = InSituDense(params, rng=0, write_rng=1)
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, (10, 8))
        analog = layer.forward(x)
        digital = x @ layer.w + layer.bias
        # One ladder step of conductance error per weight, amplified by
        # the row count, bounds the logit deviation.
        tol = 8 * layer.levels.spacing * layer._g_scale
        assert np.max(np.abs(analog - digital)) <= tol + 1e-12

    def test_write_verify_only_pulses_moved_cells(self):
        params = TrainingParams(
            n_features=4, n_classes=2, write_sigma=0.0, n_levels=16
        )
        layer = InSituDense(params, rng=0, write_rng=1)
        before = layer.pos.write_counts()
        # Reprogramming to the *current* targets must be a no-op.
        gp, _ = layer.targets()
        writes = layer._write_verify(layer.pos, gp, "fast")
        assert writes.sum() == 0
        assert np.array_equal(layer.pos.write_counts(), before)

    def test_dead_cells_not_pulsed(self):
        params = TrainingParams(n_features=4, n_classes=2, write_sigma=0.0)
        layer = InSituDense(params, rng=0, write_rng=1)
        layer.pos.stick_cell(0, 0, layer.levels.g_max)
        target = np.full(layer.pos.shape, layer.levels.g_min)
        writes = layer._write_verify(layer.pos, target, "fast")
        assert writes[0, 0] == 0
        assert writes[1:].sum() > 0 or writes[0, 1] > 0


class TestWriteVerifyOracle:
    def test_pulse_math_matches_reram_cell(self):
        """The array write-verify loop is per-pulse bit-identical to
        ReRAMCell.program_with_verify: same lognormal landing, same clip,
        same noise-margin acceptance, same rng draw order."""
        sigma = 0.2
        levels = ConductanceLevels(n_levels=16)
        target_level = 3

        cell = ReRAMCell(
            ReRAMCellParams(levels=levels, endurance=10**9),
            variability=VariabilityStack(
                write=WriteVariationModel(sigma=sigma),
                read=ReadNoiseModel(sigma=0.0),
                drift=DriftModel(nu=0.0),
            ),
            rng=np.random.default_rng(42),
        )
        cell.form()  # consumes one uniform draw; lands at g_max

        write_rng = np.random.default_rng(42)
        write_rng.random()  # mirror the cell's forming draw
        params = TrainingParams(
            n_features=1,
            n_classes=1,
            write_sigma=sigma,
            max_write_iterations=10,
            n_levels=16,
        )
        layer = InSituDense(params, rng=0, write_rng=write_rng)
        layer.pos.program(np.full((1, 1), levels.g_max))

        pulses = cell.program_with_verify(target_level, max_iterations=10)
        target = np.full((1, 1), levels.target(target_level))
        writes = layer._write_verify(layer.pos, target, "fast")

        assert int(writes[0, 0]) == pulses
        assert layer.pos.conductances()[0, 0] == pytest.approx(
            cell.conductance, rel=0, abs=0
        )


class TestTrainerDeterminism:
    def test_fast_scalar_bit_identical_including_rng_state(self):
        p = TrainingParams(epochs=2)
        fast = InSituTrainer(p, backend="fast", rng=7)
        scalar = InSituTrainer(p, backend="scalar", rng=7)
        assert fast.run() == scalar.run()
        assert (
            fast.layer.write_rng.bit_generator.state
            == scalar.layer.write_rng.bit_generator.state
        )
        assert np.array_equal(
            fast.layer.pos.conductances(), scalar.layer.pos.conductances()
        )
        assert np.array_equal(
            fast.layer.neg.write_counts(), scalar.layer.neg.write_counts()
        )

    def test_same_seed_same_trajectory(self):
        p = TrainingParams(epochs=2)
        assert (
            InSituTrainer(p, rng=3).run() == InSituTrainer(p, rng=3).run()
        )

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            InSituTrainer(TrainingParams(), backend="tpu")


class TestEnduranceAndAging:
    def test_dead_cells_accumulate_over_epochs(self):
        result = train_insitu(
            TrainingParams(epochs=5, characteristic_life=8.0), rng=3
        )
        dead = [row["dead_cells"] for row in result["history"]]
        assert dead == sorted(dead)
        assert dead[-1] > dead[0] > 0

    def test_huge_endurance_keeps_cells_alive(self):
        result = train_insitu(
            TrainingParams(epochs=3, characteristic_life=1e9), rng=3
        )
        assert result["dead_cells"] == 0
        assert result["final_accuracy"] > 0.9

    def test_programming_energy_charged(self):
        result = train_insitu(TrainingParams(epochs=2), rng=0)
        assert result["write_energy_j"] > 0
        assert result["total_pulses"] > 0

    def test_energy_scales_with_pulses(self):
        trainer = InSituTrainer(TrainingParams(epochs=2), rng=0)
        trainer.run()
        per_array = [
            (sim.costs.total.energy, sim.write_cycles.sum())
            for sim in trainer.endurance
        ]
        for energy, pulses in per_array:
            assert pulses > 0
            assert energy > 0

    def test_drift_degrades_against_driftless(self):
        base = TrainingParams(
            epochs=3, characteristic_life=1e9, aging_seconds=1e7
        )
        still = train_insitu(
            TrainingParams(**{**base.__dict__, "drift_nu": 0.0}), rng=3
        )
        drifting = train_insitu(
            TrainingParams(**{**base.__dict__, "drift_nu": 0.3}), rng=3
        )
        # Heavy drift shrinks the differential signal; it must never
        # *improve* the final model.
        assert (
            drifting["final_accuracy"] <= still["final_accuracy"]
        )


class TestExploreTraining:
    def test_rows_cover_grid(self):
        rows = explore_training(
            lives=(8.0, 1e6), drift_nus=(0.01,), epochs=2, workers=0
        )
        assert len(rows) == 2
        assert all(r["feasible"] for r in rows)
        assert {r["characteristic_life"] for r in rows} == {8.0, 1e6}
        assert all("accuracy_epoch1" in r for r in rows)

    def test_serial_parallel_bit_identical(self):
        kwargs = dict(lives=(8.0, 1e6), drift_nus=(0.01,), epochs=2, seed=4)
        assert explore_training(workers=0, **kwargs) == explore_training(
            workers=2, **kwargs
        )

    def test_empty_grid(self):
        assert explore_training(lives=(), workers=0) == []
