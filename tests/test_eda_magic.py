"""Tests for MAGIC technology mapping."""

import pytest

from repro.eda.aig import AIG, aig_from_truth_table
from repro.eda.boolean import TruthTable
from repro.eda.magic_mapping import (
    MagicOp,
    MagicProgram,
    map_netlist_to_magic_crossbar,
    map_netlist_to_magic_single_row,
)
from repro.eda.netlist import NorNetlist, nor_netlist_from_aig


def _netlist_for(table):
    aig, out = aig_from_truth_table(table)
    aig.add_output(out)
    return aig.cleanup(), nor_netlist_from_aig(aig.cleanup())


def _exhaustive_check(netlist, program):
    n = netlist.n_inputs
    for m in range(1 << n):
        inputs = [(m >> i) & 1 for i in range(n)]
        if program.execute(inputs) != netlist.simulate(inputs):
            return False
    return True


class TestMagicOps:
    def test_nor_requires_inputs(self):
        with pytest.raises(ValueError):
            MagicOp("NOR", 0, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MagicOp("XOR", 0, 1, (0,))

    def test_nor_execution(self):
        prog = MagicProgram(n_inputs=2, n_devices=3,
                            input_devices=[0, 1], output_devices=[2])
        prog.ops = [MagicOp("INIT", 0, 2), MagicOp("NOR", 1, 2, (0, 1))]
        assert prog.execute([0, 0]) == [1]
        assert prog.execute([1, 0]) == [0]

    def test_causality_violation_detected(self):
        prog = MagicProgram(n_inputs=1, n_devices=3,
                            input_devices=[0], output_devices=[2])
        prog.ops = [
            MagicOp("INIT", 0, 1),
            MagicOp("NOR", 1, 1, (0,)),
            MagicOp("INIT", 0, 2),
            MagicOp("NOR", 1, 2, (1,)),  # reads device 1 in the same cycle
        ]
        with pytest.raises(RuntimeError, match="causality"):
            prog.execute([0])


class TestSingleRow:
    @pytest.mark.parametrize("n_vars", [1, 2, 3, 4])
    def test_random_functions_verified(self, n_vars, rng):
        for _ in range(6):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            _, netlist = _netlist_for(table)
            program = map_netlist_to_magic_single_row(netlist)
            assert _exhaustive_check(netlist, program)

    def test_delay_two_cycles_per_gate(self):
        table = TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        _, netlist = _netlist_for(table)
        program = map_netlist_to_magic_single_row(netlist)
        assert program.delay == 2 * netlist.n_gates

    def test_single_row_placement(self):
        table = TruthTable.from_function(2, lambda a, b: a ^ b)
        _, netlist = _netlist_for(table)
        program = map_netlist_to_magic_single_row(netlist)
        rows, _ = program.crossbar_extent()
        assert rows == 1

    def test_reuse_shrinks_row(self, rng):
        table = TruthTable.from_function(4, lambda *xs: sum(xs) % 2)
        _, netlist = _netlist_for(table)
        base = map_netlist_to_magic_single_row(netlist, reuse_devices=False)
        reused = map_netlist_to_magic_single_row(netlist, reuse_devices=True)
        assert reused.area <= base.area
        assert _exhaustive_check(netlist, reused)


class TestCrossbar:
    @pytest.mark.parametrize("n_vars", [2, 3, 4])
    def test_random_functions_verified(self, n_vars, rng):
        for _ in range(6):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            _, netlist = _netlist_for(table)
            program = map_netlist_to_magic_crossbar(netlist)
            assert _exhaustive_check(netlist, program)

    def test_delay_two_cycles_per_level(self):
        table = TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        _, netlist = _netlist_for(table)
        program = map_netlist_to_magic_crossbar(netlist)
        assert program.delay == 2 * netlist.levels()

    def test_crossbar_faster_than_single_row(self):
        """Level parallelism pays when the netlist is wide."""
        table = TruthTable.from_function(4, lambda *xs: sum(xs) % 2)
        _, netlist = _netlist_for(table)
        single = map_netlist_to_magic_single_row(netlist)
        crossbar = map_netlist_to_magic_crossbar(netlist)
        assert crossbar.delay < single.delay

    def test_area_delay_product(self):
        table = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        _, netlist = _netlist_for(table)
        program = map_netlist_to_magic_crossbar(netlist)
        assert program.area_delay_product == program.area * program.delay

    def test_placement_columns_follow_levels(self):
        table = TruthTable.from_function(3, lambda a, b, c: (a & b) | c)
        _, netlist = _netlist_for(table)
        program = map_netlist_to_magic_crossbar(netlist)
        _, cols = program.crossbar_extent()
        assert cols == netlist.levels() + 1  # inputs in column 0
