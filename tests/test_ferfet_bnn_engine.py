"""Tests for the FeRFET XNOR-popcount BNN engine."""

import numpy as np
import pytest

from repro.ferfet.bnn_engine import XnorPopcountEngine


@pytest.fixture
def engine(rng):
    weights = rng.choice([-1, 1], size=(12, 5))
    return XnorPopcountEngine(weights)


class TestConstruction:
    def test_cell_count(self, engine):
        assert engine.n_cells == 12 * 5

    def test_non_binary_weights_rejected(self):
        with pytest.raises(ValueError, match="\\+/-1"):
            XnorPopcountEngine(np.array([[0.5, 1.0]]))

    def test_shape_validated(self):
        with pytest.raises(ValueError, match="2-D"):
            XnorPopcountEngine(np.array([1, -1]))


class TestDotProduct:
    def test_matches_reference_exactly(self, engine, rng):
        """Digital in-memory computation: bit-exact, no analog error."""
        for _ in range(10):
            x = rng.choice([-1, 1], size=12)
            assert np.array_equal(engine.dot(x), engine.reference_dot(x))

    def test_all_ones_input(self, engine):
        x = np.ones(12, dtype=int)
        assert np.array_equal(engine.dot(x), engine.weights.sum(axis=0))

    def test_sign_activation(self, engine, rng):
        x = rng.choice([-1, 1], size=12)
        raw = engine.dot(x)
        out = engine.forward(x)
        assert np.array_equal(out, np.where(raw >= 0, 1, -1))

    def test_output_parity(self, engine, rng):
        """XNOR-popcount outputs have the parity of the fan-in."""
        x = rng.choice([-1, 1], size=12)
        assert np.all((engine.dot(x) - 12) % 2 == 0)

    def test_non_binary_activation_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.dot([0] * 12)

    def test_wrong_length_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.dot([1] * 11)


class TestVectorizedAgainstCellWalk:
    """The numpy XNOR-popcount path must be bit-identical to evaluating
    every programmable cell at switch level."""

    def test_dot_matches_cell_walk(self, engine, rng):
        for _ in range(10):
            x = rng.choice([-1, 1], size=12)
            assert np.array_equal(engine.dot(x), engine.dot_cells(x))

    def test_cell_walk_matches_reference(self, engine, rng):
        x = rng.choice([-1, 1], size=12)
        assert np.array_equal(engine.dot_cells(x), engine.reference_dot(x))

    def test_sync_tracks_reprogrammed_cell(self, rng):
        from repro.ferfet.cells import CellFunction

        weights = rng.choice([-1, 1], size=(6, 3))
        engine = XnorPopcountEngine(weights)
        # Flip one cell's function out of band (e.g. a programming fault).
        flipped = (
            CellFunction.XOR
            if engine.cells[2][1].function is CellFunction.XNOR
            else CellFunction.XNOR
        )
        engine.cells[2][1].program(flipped)
        engine.sync_from_cells()
        x = rng.choice([-1, 1], size=6)
        assert np.array_equal(engine.dot(x), engine.dot_cells(x))


class TestWeightEncoding:
    def test_single_weight_plus_one(self):
        engine = XnorPopcountEngine(np.array([[1]]))
        assert engine.dot([1])[0] == 1
        assert engine.dot([-1])[0] == -1

    def test_single_weight_minus_one(self):
        engine = XnorPopcountEngine(np.array([[-1]]))
        assert engine.dot([1])[0] == -1
        assert engine.dot([-1])[0] == 1
