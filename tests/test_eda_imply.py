"""Tests for IMPLY technology mapping."""

import pytest

from repro.eda.aig import AIG, aig_from_truth_table
from repro.eda.boolean import TruthTable
from repro.eda.imply_mapping import ImplyProgram, map_aig_to_imply


def _exhaustive_check(aig, program):
    n = aig.n_inputs
    for m in range(1 << n):
        inputs = [(m >> i) & 1 for i in range(n)]
        if program.execute(inputs) != aig.simulate(inputs):
            return False
    return True


class TestImplyProgram:
    def test_imply_semantics(self):
        # q <- p -> q over all four state combinations.
        for p_val in (0, 1):
            for q_val in (0, 1):
                prog = ImplyProgram(n_inputs=2, n_devices=2,
                                    input_devices=[0, 1], output_devices=[1])
                prog.imply(0, 1)
                result = prog.execute([p_val, q_val])[0]
                assert result == ((1 - p_val) | q_val)

    def test_false_resets(self):
        prog = ImplyProgram(n_inputs=1, n_devices=1,
                            input_devices=[0], output_devices=[0])
        prog.false(0)
        assert prog.execute([1]) == [0]

    def test_self_imply_rejected(self):
        prog = ImplyProgram(n_inputs=1, n_devices=1, input_devices=[0])
        with pytest.raises(ValueError):
            prog.imply(0, 0)

    def test_nand_gadget_three_steps(self):
        """FALSE(w); IMPLY(a, w); IMPLY(b, w) computes NAND in 3 steps."""
        prog = ImplyProgram(n_inputs=2, n_devices=3,
                            input_devices=[0, 1], output_devices=[2])
        prog.false(2)
        prog.imply(0, 2)
        prog.imply(1, 2)
        assert prog.delay == 3
        for a in (0, 1):
            for b in (0, 1):
                assert prog.execute([a, b]) == [1 - (a & b)]


class TestMapping:
    @pytest.mark.parametrize("n_vars", [1, 2, 3, 4])
    def test_random_functions_verified(self, n_vars, rng):
        for _ in range(6):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            aig, out = aig_from_truth_table(table)
            aig.add_output(out)
            aig = aig.cleanup()
            program = map_aig_to_imply(aig)
            assert _exhaustive_check(aig, program)

    def test_multi_output_circuit(self):
        aig = AIG(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        aig.add_output(aig.and_(a, b))
        aig.add_output(aig.xor_(b, c))
        program = map_aig_to_imply(aig)
        assert _exhaustive_check(aig, program)

    def test_complemented_output(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        aig.add_output(aig.and_(a, b) ^ 1)  # NAND
        program = map_aig_to_imply(aig)
        assert _exhaustive_check(aig, program)

    def test_device_reuse_reduces_area(self):
        aig = AIG(8)
        acc = aig.input_lit(0)
        for i in range(1, 8):
            acc = aig.and_(acc, aig.input_lit(i))
        aig.add_output(acc)
        with_reuse = map_aig_to_imply(aig, reuse_devices=True)
        without = map_aig_to_imply(aig, reuse_devices=False)
        assert with_reuse.area < without.area
        assert _exhaustive_check(aig, with_reuse)
        assert _exhaustive_check(aig, without)

    def test_reuse_does_not_change_delay(self):
        aig = AIG(6)
        acc = aig.input_lit(0)
        for i in range(1, 6):
            acc = aig.xor_(acc, aig.input_lit(i))
        aig.add_output(acc)
        assert (
            map_aig_to_imply(aig, reuse_devices=True).delay
            == map_aig_to_imply(aig, reuse_devices=False).delay
        )

    def test_delay_scales_with_node_count(self):
        """Each AND costs at most ~5 IMPLY/FALSE steps."""
        aig = AIG(4)
        a, b, c, d = (aig.input_lit(i) for i in range(4))
        aig.add_output(aig.and_(aig.and_(a, b), aig.and_(c, d)))
        program = map_aig_to_imply(aig)
        assert program.delay <= 5 * aig.n_nodes + 2

    def test_constant_outputs(self):
        aig = AIG(1)
        aig.add_output(0)  # constant false
        aig.add_output(1)  # constant true
        program = map_aig_to_imply(aig)
        assert program.execute([0]) == [0, 1]
        assert program.execute([1]) == [0, 1]
