"""Tests for row decoder and wordline driver (incl. ADF injection)."""

import numpy as np
import pytest

from repro.periphery.drivers import DriverConfig, RowDecoder, WordlineDriver


class TestRowDecoder:
    def test_one_hot_decode(self):
        dec = RowDecoder(8)
        mask = dec.decode(3)
        assert mask[3]
        assert mask.sum() == 1

    def test_multi_row_activation(self):
        """CIM decoders enable several rows in parallel (Section II-B2)."""
        dec = RowDecoder(8)
        mask = dec.decode_many([0, 2, 5])
        assert mask.sum() == 3
        assert mask[0] and mask[2] and mask[5]

    def test_adf_no_access(self):
        dec = RowDecoder(8)
        dec.inject_fault(4, [])
        assert dec.decode(4).sum() == 0

    def test_adf_wrong_row(self):
        dec = RowDecoder(8)
        dec.inject_fault(1, [6])
        mask = dec.decode(1)
        assert mask[6] and not mask[1]

    def test_adf_multiple_rows(self):
        dec = RowDecoder(8)
        dec.inject_fault(2, [2, 3])
        assert dec.decode(2).sum() == 2

    def test_clear_faults(self):
        dec = RowDecoder(8)
        dec.inject_fault(0, [7])
        dec.clear_faults()
        assert not dec.has_faults
        assert dec.decode(0)[0]

    def test_address_bounds(self):
        dec = RowDecoder(4)
        with pytest.raises(ValueError):
            dec.decode(4)
        with pytest.raises(ValueError):
            dec.inject_fault(0, [9])


class TestWordlineDriver:
    def test_drive_applies_voltage_to_mask(self):
        drv = WordlineDriver(4)
        mask = np.array([True, False, True, False])
        v = drv.drive(mask, 0.2)
        assert np.allclose(v, [0.2, 0.0, 0.2, 0.0])

    def test_energy_accounting(self):
        drv = WordlineDriver(4)
        drv.drive(np.array([True, True, False, False]), 0.2)
        assert drv.energy_consumed == pytest.approx(
            2 * drv.config.energy_per_activation
        )

    def test_analog_drive(self):
        drv = WordlineDriver(3)
        v = drv.drive_analog(np.array([0.1, 0.0, 0.2]))
        assert np.allclose(v, [0.1, 0.0, 0.2])

    def test_area_scales_with_rows(self):
        assert WordlineDriver(64).area == pytest.approx(
            2 * WordlineDriver(32).area
        )

    def test_shape_validation(self):
        drv = WordlineDriver(4)
        with pytest.raises(ValueError):
            drv.drive(np.array([True, False]), 0.2)
        with pytest.raises(ValueError):
            drv.drive_analog(np.zeros(5))
