"""Tests for the multi-tile CIM accelerator."""

import numpy as np
import pytest

from repro.core.accelerator import AcceleratorParams, CIMAccelerator


class TestTiling:
    def test_tile_grid_dimensions(self, rng):
        w = rng.uniform(-1, 1, (100, 50))
        accel = CIMAccelerator(w, AcceleratorParams(tile_rows=64, tile_cols=32), rng=0)
        assert accel.n_row_blocks == 2
        assert accel.n_col_blocks == 2
        assert accel.n_tiles == 4

    def test_exact_fit(self, rng):
        w = rng.uniform(-1, 1, (64, 32))
        accel = CIMAccelerator(w, rng=0)
        assert accel.n_tiles == 1

    def test_weights_must_be_scaled(self, rng):
        with pytest.raises(ValueError, match="pre-scaled"):
            CIMAccelerator(rng.uniform(-3, 3, (8, 8)), rng=0)


class TestVMM:
    def test_accuracy_on_multi_tile(self, rng):
        w = rng.uniform(-1, 1, (100, 50))
        accel = CIMAccelerator(w, rng=1)
        x = rng.uniform(0, 1, 100)
        y = accel.vmm(x, noisy=False)
        reference = x @ w
        assert y.shape == (50,)
        assert np.corrcoef(y, reference)[0, 1] > 0.995

    def test_partial_sum_accumulation(self, rng):
        """Splitting rows over tiles must not change the result beyond
        per-tile quantization."""
        w = rng.uniform(-1, 1, (128, 32))
        x = rng.uniform(0, 1, 128)
        one_tile = CIMAccelerator(
            w, AcceleratorParams(tile_rows=128, tile_cols=32, adc_bits=12), rng=2
        )
        four_tiles = CIMAccelerator(
            w, AcceleratorParams(tile_rows=32, tile_cols=32, adc_bits=12), rng=2
        )
        y1 = one_tile.vmm(x, noisy=False)
        y4 = four_tiles.vmm(x, noisy=False)
        assert np.allclose(y1, y4, atol=0.2)

    def test_input_domain_checked(self, rng):
        accel = CIMAccelerator(rng.uniform(-1, 1, (16, 8)), rng=3)
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            accel.vmm(np.full(16, 1.5))

    def test_input_shape_checked(self, rng):
        accel = CIMAccelerator(rng.uniform(-1, 1, (16, 8)), rng=3)
        with pytest.raises(ValueError, match="shape"):
            accel.vmm(np.zeros(15))


class TestPartialSumNonDivisible:
    """Regressions for partial-sum tiling when weight shapes do not divide
    the tile geometry (the zero-padded edge blocks)."""

    def test_block_grid_rounds_up(self, rng):
        w = rng.uniform(-1, 1, (37, 13))
        accel = CIMAccelerator(
            w, AcceleratorParams(tile_rows=16, tile_cols=8), rng=0
        )
        assert accel.n_row_blocks == 3
        assert accel.n_col_blocks == 2
        assert accel.n_tiles == 6

    def test_non_divisible_matches_reference(self, rng):
        """Padding rows/cols with zeros must not leak into the result."""
        w = rng.uniform(-1, 1, (37, 13))
        x = rng.uniform(0, 1, 37)
        accel = CIMAccelerator(
            w,
            AcceleratorParams(tile_rows=16, tile_cols=8, adc_bits=14),
            rng=1,
        )
        y = accel.vmm(x, noisy=False)
        assert y.shape == (13,)
        ref = x @ w
        assert np.corrcoef(y, ref)[0, 1] > 0.999
        assert np.abs(y - ref).max() < 0.05 * max(np.abs(ref).max(), 1.0)

    def test_tile_size_invariance_at_high_resolution(self, rng):
        """At high ADC resolution the same matrix split over different
        tile geometries must agree (partial sums are exact in digital)."""
        w = rng.uniform(-1, 1, (37, 13))
        x = rng.uniform(0, 1, 37)
        whole = CIMAccelerator(
            w,
            AcceleratorParams(tile_rows=64, tile_cols=16, adc_bits=14),
            rng=2,
        )
        split = CIMAccelerator(
            w,
            AcceleratorParams(tile_rows=16, tile_cols=8, adc_bits=14),
            rng=2,
        )
        y_whole = whole.vmm(x, noisy=False)
        y_split = split.vmm(x, noisy=False)
        assert np.allclose(y_whole, y_split, atol=0.1)

    def test_vmm_batch_matches_vmm_rows(self, rng):
        """The batched path must reproduce the per-sample path exactly on
        a non-divisible shape (noiseless)."""
        w = rng.uniform(-1, 1, (37, 13))
        accel = CIMAccelerator(
            w, AcceleratorParams(tile_rows=16, tile_cols=8), rng=3
        )
        x = rng.uniform(0, 1, (5, 37))
        batched = accel.vmm_batch(x, noisy=False)
        stacked = np.stack(
            [accel.vmm(row, noisy=False) for row in x], axis=0
        )
        assert batched.shape == (5, 13)
        assert np.array_equal(batched, stacked)

    def test_single_row_and_col_overhang(self, rng):
        """Overhang of exactly one row/column — the worst-case padding."""
        w = rng.uniform(-1, 1, (17, 9))
        x = rng.uniform(0, 1, 17)
        accel = CIMAccelerator(
            w,
            AcceleratorParams(tile_rows=16, tile_cols=8, adc_bits=14),
            rng=4,
        )
        assert accel.n_row_blocks == 2 and accel.n_col_blocks == 2
        y = accel.vmm(x, noisy=False)
        ref = x @ w
        assert np.corrcoef(y, ref)[0, 1] > 0.999


class TestFaultInjection:
    def test_yield_injection_across_tiles(self, rng):
        w = rng.uniform(-1, 1, (100, 50))
        accel = CIMAccelerator(w, rng=4)
        rate = accel.inject_yield_faults(0.8, rng=5)
        assert rate == pytest.approx(0.2, abs=0.05)
        for tile_row in accel.tiles:
            for core in tile_row:
                assert core.array.fault_count() > 0

    def test_faults_degrade_accuracy(self, rng):
        w = rng.uniform(-1, 1, (100, 50))
        x = rng.uniform(0, 1, 100)
        clean = CIMAccelerator(w, rng=6)
        y_clean = clean.vmm(x, noisy=False)
        faulty = CIMAccelerator(w, rng=6)
        faulty.inject_yield_faults(0.7, rng=7)
        y_faulty = faulty.vmm(x, noisy=False)
        ref = x @ w
        assert np.abs(y_faulty - ref).mean() > np.abs(y_clean - ref).mean()

    def test_cost_aggregation(self, rng):
        w = rng.uniform(-1, 1, (100, 50))
        accel = CIMAccelerator(w, rng=8)
        accel.vmm(rng.uniform(0, 1, 100), noisy=False)
        costs = accel.total_costs()
        assert costs.total.energy > 0
        assert "adc" in costs.by_category
