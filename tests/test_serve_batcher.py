"""Tests for the inference request batcher (coalescing + demux)."""

import asyncio

import numpy as np
import pytest

from repro.serve.batcher import RequestBatcher
from repro.utils import telemetry


def run(coro):
    return asyncio.run(coro)


def doubling_runner(stacked):
    telemetry.current().incr("runner.calls")
    telemetry.current().incr("runner.rows", stacked.shape[0])
    return stacked * 2.0


class TestCoalescing:
    def test_concurrent_requests_share_one_flush(self):
        async def main():
            batcher = RequestBatcher(window_s=0.01, max_batch=8)
            xs = [np.full((1, 3), float(k)) for k in range(5)]
            results = await asyncio.gather(
                *[batcher.submit("m", x, doubling_runner) for x in xs]
            )
            return batcher, results

        batcher, results = run(main())
        assert batcher.stats.flushes == 1
        assert batcher.stats.coalesced_flushes == 1
        assert batcher.stats.requests == 5
        assert batcher.stats.max_batch_rows == 5
        for k, (out, counters) in enumerate(results):
            np.testing.assert_array_equal(out, np.full((1, 3), 2.0 * k))
            assert counters["runner.calls"] == pytest.approx(1 / 5)

    def test_max_batch_flushes_inline(self):
        async def main():
            batcher = RequestBatcher(window_s=60.0, max_batch=3)
            xs = [np.full((1, 2), float(k)) for k in range(3)]
            return await asyncio.wait_for(
                asyncio.gather(
                    *[batcher.submit("m", x, doubling_runner) for x in xs]
                ),
                timeout=5.0,
            )

        results = run(main())  # would hang for 60s without the inline flush
        assert len(results) == 3

    def test_window_zero_degrades_to_sequential(self):
        async def main():
            batcher = RequestBatcher(window_s=0.0, max_batch=32)
            for k in range(4):
                out, _ = await batcher.submit(
                    "m", np.full((1, 2), float(k)), doubling_runner
                )
                np.testing.assert_array_equal(out, np.full((1, 2), 2.0 * k))
            return batcher

        batcher = run(main())
        assert batcher.stats.flushes == 4
        assert batcher.stats.coalesced_flushes == 0

    def test_different_keys_never_stack(self):
        async def main():
            batcher = RequestBatcher(window_s=0.01, max_batch=8)
            return await asyncio.gather(
                batcher.submit("a", np.ones((1, 2)), doubling_runner),
                batcher.submit("b", np.ones((1, 4)), doubling_runner),
            ), batcher

        (ra, rb), batcher = run(main())
        assert ra[0].shape == (1, 2)
        assert rb[0].shape == (1, 4)
        assert batcher.stats.flushes == 2
        assert batcher.stats.coalesced_flushes == 0

    def test_multi_row_requests_demux_block_wise(self):
        async def main():
            batcher = RequestBatcher(window_s=0.01, max_batch=8)
            return await asyncio.gather(
                batcher.submit("m", np.zeros((2, 3)), doubling_runner),
                batcher.submit("m", np.ones((3, 3)), doubling_runner),
            )

        (out_a, c_a), (out_b, c_b) = run(main())
        assert out_a.shape == (2, 3)
        assert out_b.shape == (3, 3)
        np.testing.assert_array_equal(out_b, np.full((3, 3), 2.0))
        # Counters are apportioned by row share and sum to the batch total.
        assert c_a["runner.rows"] + c_b["runner.rows"] == pytest.approx(5.0)
        assert c_a["runner.rows"] == pytest.approx(2.0)


class TestDemuxFidelity:
    def test_demux_is_bit_identical_to_solo_runs(self):
        """Outputs demuxed from a coalesced flush must equal running each
        request alone — bit-for-bit, not approximately.

        This holds whenever the runner treats batch rows independently,
        which the deployed IR-drop inference path does (per-column LU
        back-substitution, elementwise quantization/decode); a whole-batch
        BLAS matmul would *not* qualify, which is why served models run
        with ``wire_resistance > 0`` (pinned in the service tests).
        """
        rng = np.random.default_rng(5)
        scale = rng.normal(size=(1, 4))

        def runner(stacked):
            # Row-independent: elementwise affine + clip + running sum
            # along features only.
            return np.maximum(stacked * scale - 0.25, 0.0).cumsum(axis=1)

        xs = [rng.uniform(0, 1, size=(1, 4)) for _ in range(6)]

        async def main():
            batcher = RequestBatcher(window_s=0.01, max_batch=16)
            return await asyncio.gather(
                *[batcher.submit("m", x, runner) for x in xs]
            )

        results = run(main())
        for x, (out, _) in zip(xs, results):
            solo = runner(x)
            assert np.array_equal(out, solo)  # exact, no tolerance

    def test_flush_telemetry_is_captured_not_leaked(self):
        """Runner counters go to the per-flush scope (and are handed back
        apportioned); they must not leak into the ambient scope."""

        async def main():
            with telemetry.scoped() as ambient:
                batcher = RequestBatcher(window_s=0.01, max_batch=8)
                await asyncio.gather(
                    *[
                        batcher.submit("m", np.ones((1, 2)), doubling_runner)
                        for _ in range(3)
                    ]
                )
            return ambient

        ambient = run(main())
        counters = ambient.snapshot()["counters"]
        assert "runner.calls" not in counters
        assert counters["serve.batch.requests"] == 3
        assert counters["serve.batch.flushes"] == 1
        assert counters["serve.batch.rows"] == 3


class TestErrors:
    def test_runner_failure_propagates_to_every_waiter(self):
        def broken(stacked):
            raise RuntimeError("kaboom")

        async def main():
            batcher = RequestBatcher(window_s=0.01, max_batch=8)
            results = await asyncio.gather(
                *[
                    batcher.submit("m", np.ones((1, 2)), broken)
                    for _ in range(3)
                ],
                return_exceptions=True,
            )
            return results

        results = run(main())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_rejects_bad_input_shapes(self):
        async def main():
            batcher = RequestBatcher()
            await batcher.submit("m", np.ones(3), doubling_runner)

        with pytest.raises(ValueError, match="n_rows"):
            run(main())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            RequestBatcher(window_s=-1.0)
        with pytest.raises(ValueError, match="max_batch"):
            RequestBatcher(max_batch=0)

    def test_flush_all_releases_parked_requests(self):
        async def main():
            batcher = RequestBatcher(window_s=60.0, max_batch=100)
            task = asyncio.ensure_future(
                batcher.submit("m", np.ones((1, 2)), doubling_runner)
            )
            await asyncio.sleep(0.01)
            assert batcher.pending_requests == 1
            batcher.flush_all()
            out, _ = await asyncio.wait_for(task, timeout=5.0)
            assert batcher.pending_requests == 0
            return out

        out = run(main())
        np.testing.assert_array_equal(out, np.full((1, 2), 2.0))
