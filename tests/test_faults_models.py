"""Tests for the fault taxonomy (Fig 6) and behavioural fault processes."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.faults.models import (
    Fault,
    FaultClass,
    FaultPersistence,
    FaultType,
    ReadDisturbProcess,
    WriteDisturbProcess,
    fault_taxonomy,
)


class TestTaxonomy:
    """The Fig 6 matrix, quadrant by quadrant."""

    def test_dynamic_hard_is_endurance(self):
        taxonomy = fault_taxonomy()
        quadrant = taxonomy[(FaultClass.HARD, FaultPersistence.DYNAMIC)]
        assert quadrant == [FaultType.ENDURANCE_WEAROUT]

    def test_dynamic_soft_mechanisms(self):
        taxonomy = fault_taxonomy()
        quadrant = set(taxonomy[(FaultClass.SOFT, FaultPersistence.DYNAMIC)])
        assert {
            FaultType.READ_DISTURB,
            FaultType.WRITE_DISTURB,
            FaultType.WRITE_VARIATION,
        }.issubset(quadrant)

    def test_static_hard_includes_fabrication_defects(self):
        taxonomy = fault_taxonomy()
        quadrant = set(taxonomy[(FaultClass.HARD, FaultPersistence.STATIC)])
        assert {FaultType.STUCK_AT_0, FaultType.STUCK_AT_1}.issubset(quadrant)

    def test_static_soft_is_fabrication_variation(self):
        taxonomy = fault_taxonomy()
        quadrant = taxonomy[(FaultClass.SOFT, FaultPersistence.STATIC)]
        assert quadrant == [FaultType.FABRICATION_VARIATION]

    def test_every_mechanism_classified(self):
        classified = [t for types in fault_taxonomy().values() for t in types]
        assert set(classified) == set(FaultType)
        assert len(classified) == len(FaultType)

    def test_fault_instance_properties(self):
        fault = Fault(FaultType.STUCK_AT_0, 1, 2)
        assert fault.is_hard
        assert fault.fault_class is FaultClass.HARD
        assert fault.persistence is FaultPersistence.STATIC
        soft = Fault(FaultType.READ_DISTURB, 0, 0)
        assert not soft.is_hard


def _fresh_array(seed=0, n=16):
    array = CrossbarArray(CrossbarConfig(rows=n, cols=n), rng=seed)
    array.program(np.full((n, n), 3e-5))
    return array


class TestReadDisturb:
    def test_reads_shift_toward_lrs(self):
        array = _fresh_array()
        proc = ReadDisturbProcess(array, disturb_probability=0.5,
                                  shift_fraction=0.2, rng=1)
        g0 = array.conductances().mean()
        for _ in range(10):
            proc.read()
        assert array.conductances().mean() > g0
        assert proc.disturb_events > 0

    def test_zero_probability_no_disturb(self):
        array = _fresh_array()
        proc = ReadDisturbProcess(array, disturb_probability=0.0, rng=1)
        g0 = array.conductances().copy()
        proc.read()
        assert np.array_equal(array.conductances(), g0)

    def test_vmm_also_disturbs(self):
        array = _fresh_array()
        proc = ReadDisturbProcess(array, disturb_probability=1.0,
                                  shift_fraction=0.1, rng=1)
        proc.vmm(np.full(16, 0.2))
        assert proc.disturb_events == 16 * 16

    def test_stuck_cells_immune(self):
        array = _fresh_array()
        array.stick_cell(0, 0, 1e-6)
        proc = ReadDisturbProcess(array, disturb_probability=1.0,
                                  shift_fraction=0.5, rng=1)
        proc.read()
        assert array.conductances()[0, 0] == 1e-6

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            ReadDisturbProcess(_fresh_array(), disturb_probability=1.5)


class TestWriteDisturb:
    def test_neighbours_on_row_and_column_shift(self):
        array = _fresh_array()
        proc = WriteDisturbProcess(array, disturb_probability=1.0,
                                   shift_fraction=0.3, rng=2)
        g0 = array.conductances().copy()
        proc.write_cell(4, 4, 9e-5)
        g1 = array.conductances()
        # Cells sharing row 4 or column 4 moved toward LRS.
        assert g1[4, 0] > g0[4, 0]
        assert g1[0, 4] > g0[0, 4]
        # Cells sharing neither line are untouched.
        assert g1[0, 0] == pytest.approx(g0[0, 0])

    def test_written_cell_gets_target(self):
        array = _fresh_array()
        proc = WriteDisturbProcess(array, disturb_probability=0.0, rng=2)
        proc.write_cell(2, 3, 8e-5)
        assert array.conductances()[2, 3] == pytest.approx(8e-5)

    def test_disturb_events_counted(self):
        array = _fresh_array()
        proc = WriteDisturbProcess(array, disturb_probability=1.0, rng=2)
        proc.write_cell(0, 0, 9e-5)
        # Full row (15 others) + full column (15 others).
        assert proc.disturb_events == 30
