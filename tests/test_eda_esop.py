"""Tests for ESOP / Reed-Muller expansions."""

import pytest

from repro.eda.boolean import TruthTable
from repro.eda.esop import (
    Esop,
    EsopCube,
    esop_from_truth_table,
    fprm_from_truth_table,
    minimize_esop,
)


class TestCubes:
    def test_cube_evaluation(self):
        # x0 * ~x1
        cube = EsopCube(care=0b11, polarity=0b01)
        assert cube.evaluate(0b01) == 1
        assert cube.evaluate(0b11) == 0
        assert cube.evaluate(0b00) == 0

    def test_constant_cube(self):
        one = EsopCube(care=0, polarity=0)
        assert all(one.evaluate(m) == 1 for m in range(4))
        assert str(one) == "1"

    def test_polarity_subset_enforced(self):
        with pytest.raises(ValueError):
            EsopCube(care=0b01, polarity=0b10)

    def test_literal_count_and_str(self):
        cube = EsopCube(care=0b101, polarity=0b100)
        assert cube.n_literals == 2
        assert str(cube) == "~x0*x2"


class TestPPRM:
    @pytest.mark.parametrize("n_vars", [1, 2, 3, 4, 5])
    def test_round_trip(self, n_vars, rng):
        for _ in range(8):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            esop = esop_from_truth_table(table)
            assert esop.to_truth_table() == table

    def test_pprm_positive_polarity_only(self, rng):
        table = TruthTable(4, int(rng.integers(0, 1 << 16)))
        esop = esop_from_truth_table(table)
        assert all(c.polarity == c.care for c in esop.cubes)

    def test_xor_is_two_cubes(self):
        table = TruthTable.from_function(2, lambda a, b: a ^ b)
        esop = esop_from_truth_table(table)
        assert esop.n_cubes == 2

    def test_and_is_one_cube(self):
        table = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        assert esop_from_truth_table(table).n_cubes == 1

    def test_constant_zero_empty(self):
        assert esop_from_truth_table(TruthTable.constant(3, False)).n_cubes == 0


class TestFPRM:
    @pytest.mark.parametrize("polarity", range(8))
    def test_all_polarities_correct(self, polarity, rng):
        table = TruthTable(3, int(rng.integers(0, 256)))
        esop = fprm_from_truth_table(table, polarity)
        assert esop.to_truth_table() == table

    def test_polarity_matches_literal_phases(self):
        table = TruthTable.from_function(2, lambda a, b: (1 - a) & b)
        esop = fprm_from_truth_table(table, polarity=0b10)  # x0 negative
        # ~x0 * x1 under this polarity is a single cube.
        assert esop.n_cubes == 1

    def test_minimize_never_worse_than_pprm(self, rng):
        for _ in range(10):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            assert (
                minimize_esop(table).n_cubes
                <= esop_from_truth_table(table).n_cubes
            )

    def test_minimize_correct(self, rng):
        for _ in range(10):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            assert minimize_esop(table).to_truth_table() == table

    def test_polarity_bounds(self):
        with pytest.raises(ValueError):
            fprm_from_truth_table(TruthTable.constant(2, True), 4)


class TestCrossbarBound:
    def test_building_block_is_3x2(self):
        """[69]: 3 wordlines x 2 bitlines suffice for ESOP evaluation."""
        table = TruthTable.from_function(3, lambda a, b, c: a ^ (b & c))
        esop = esop_from_truth_table(table)
        assert esop.crossbar_building_block() == (3, 2)

    def test_delay_linear_in_cubes(self):
        table = TruthTable.from_function(4, lambda *xs: sum(xs) % 2)
        esop = esop_from_truth_table(table)
        assert esop.mapping_delay_estimate() == esop.n_cubes + 1
