"""Tests for the And-Inverter Graph."""

import pytest

from repro.eda.aig import (
    AIG,
    FALSE_LIT,
    TRUE_LIT,
    aig_from_truth_table,
    lit_not,
)
from repro.eda.boolean import TruthTable


class TestSimplifications:
    def test_and_with_false(self):
        aig = AIG(2)
        assert aig.and_(aig.input_lit(0), FALSE_LIT) == FALSE_LIT
        assert aig.n_nodes == 0

    def test_and_with_true(self):
        aig = AIG(2)
        a = aig.input_lit(0)
        assert aig.and_(a, TRUE_LIT) == a

    def test_and_idempotent(self):
        aig = AIG(2)
        a = aig.input_lit(0)
        assert aig.and_(a, a) == a

    def test_and_with_complement_is_false(self):
        aig = AIG(2)
        a = aig.input_lit(0)
        assert aig.and_(a, lit_not(a)) == FALSE_LIT

    def test_structural_hashing_shares_nodes(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        n1 = aig.and_(a, b)
        n2 = aig.and_(b, a)  # commuted
        assert n1 == n2
        assert aig.n_nodes == 1

    def test_bad_literal_rejected(self):
        aig = AIG(1)
        with pytest.raises(ValueError, match="unknown node"):
            aig.and_(99, aig.input_lit(0))


class TestSemantics:
    def test_or_xor_mux_maj(self):
        aig = AIG(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        aig.add_output(aig.or_(a, b))
        aig.add_output(aig.xor_(a, b))
        aig.add_output(aig.mux(c, a, b))
        aig.add_output(aig.maj(a, b, c))
        for m in range(8):
            va, vb, vc = m & 1, (m >> 1) & 1, (m >> 2) & 1
            got = aig.simulate([va, vb, vc])
            assert got[0] == (va | vb)
            assert got[1] == (va ^ vb)
            assert got[2] == (va if vc else vb)
            assert got[3] == int(va + vb + vc >= 2)

    def test_truth_table_simulation_matches_pointwise(self):
        aig = AIG(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        aig.add_output(aig.xor_(aig.and_(a, b), c))
        table = aig.to_truth_tables()[0]
        for m in range(8):
            inputs = [(m >> i) & 1 for i in range(3)]
            assert table.evaluate(inputs) == aig.simulate(inputs)[0]

    def test_levels(self):
        aig = AIG(4)
        a, b, c, d = (aig.input_lit(i) for i in range(4))
        ab = aig.and_(a, b)
        cd = aig.and_(c, d)
        aig.add_output(aig.and_(ab, cd))
        assert aig.levels() == 2

    def test_empty_outputs_zero_levels(self):
        assert AIG(2).levels() == 0


class TestSynthesis:
    @pytest.mark.parametrize("n_vars", [1, 2, 3, 4])
    def test_random_functions_round_trip(self, n_vars, rng):
        for _ in range(10):
            bits = int(rng.integers(0, 1 << (1 << n_vars)))
            table = TruthTable(n_vars, bits)
            aig, out = aig_from_truth_table(table)
            aig.add_output(out)
            assert aig.to_truth_tables()[0] == table

    def test_constant_functions(self):
        aig, out = aig_from_truth_table(TruthTable.constant(3, True))
        assert out == TRUE_LIT
        aig, out = aig_from_truth_table(TruthTable.constant(3, False))
        assert out == FALSE_LIT

    def test_shared_synthesis_into_existing_aig(self):
        table = TruthTable.from_function(2, lambda a, b: a & b)
        aig = AIG(4)
        _, out1 = aig_from_truth_table(table, aig)
        nodes_after_first = aig.n_nodes
        _, out2 = aig_from_truth_table(table, aig)
        assert out1 == out2
        assert aig.n_nodes == nodes_after_first  # fully shared

    def test_too_small_host_rejected(self):
        table = TruthTable.constant(4, True)
        with pytest.raises(ValueError, match="inputs"):
            aig_from_truth_table(table, AIG(2))


class TestCleanup:
    def test_dangling_nodes_removed(self):
        aig = AIG(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        keep = aig.and_(a, b)
        aig.and_(b, c)   # dangling
        aig.add_output(keep)
        cleaned = aig.cleanup()
        assert cleaned.n_nodes == 1
        assert cleaned.to_truth_tables()[0] == aig.to_truth_tables()[0]

    def test_cleanup_preserves_function(self, rng):
        table = TruthTable(4, int(rng.integers(0, 1 << 16)))
        aig, out = aig_from_truth_table(table)
        aig.add_output(out)
        assert aig.cleanup().to_truth_tables()[0] == table
