"""Tests for the chip-level dimensioning model."""

import pytest

from repro.core.dimensioning import (
    ChipSpec,
    adc_bits_sweep,
    dimension_chip,
    technology_sweep,
)


class TestChipSpec:
    def test_defaults_valid(self):
        spec = ChipSpec()
        assert spec.profile.name == "reram"
        assert spec.tile_budget().total_power > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChipSpec(n_tiles=0)
        with pytest.raises(ValueError):
            ChipSpec(utilization=0)
        with pytest.raises(ValueError):
            ChipSpec(utilization=1.5)


class TestDimensioning:
    def test_report_consistency(self):
        report = dimension_chip(ChipSpec())
        assert report.sustained_tops < report.peak_tops
        assert report.total_power_w > report.compute_power_w
        assert report.tops_per_watt > 0
        assert report.area_mm2 > 0

    def test_peak_scales_with_tiles(self):
        small = dimension_chip(ChipSpec(n_tiles=16))
        big = dimension_chip(ChipSpec(n_tiles=64))
        assert big.peak_tops == pytest.approx(4 * small.peak_tops)

    def test_regulation_tax_present(self):
        """The Conclusions' multi-voltage burden shows up as power."""
        report = dimension_chip(ChipSpec())
        assert report.regulation_power_w > 0

    def test_row_format(self):
        row = dimension_chip(ChipSpec()).row()
        assert row["technology"] == "reram"
        assert row["TOPS_per_W"] > 0


class TestAdcSweep:
    def test_power_grows_efficiency_falls_with_bits(self):
        reports = adc_bits_sweep((4, 6, 8, 10))
        powers = [r.total_power_w for r in reports]
        efficiency = [r.tops_per_watt for r in reports]
        assert powers == sorted(powers)
        assert efficiency == sorted(efficiency, reverse=True)

    def test_throughput_unchanged_by_bits(self):
        reports = adc_bits_sweep((4, 10))
        assert reports[0].peak_tops == reports[1].peak_tops


class TestTechnologySweep:
    def test_all_technologies_dimension(self):
        reports = technology_sweep()
        assert {r.spec.technology for r in reports} == {
            "reram",
            "pcm",
            "mram",
            "sram",
        }

    def test_sram_pays_standby(self):
        reports = {r.spec.technology: r for r in technology_sweep()}
        assert reports["sram"].standby_power_w > 0
        for nvm in ("reram", "pcm", "mram"):
            assert reports[nvm].standby_power_w == 0.0

    def test_power_is_periphery_dominated(self):
        """Fig 5 at chip scale: the ADC budget dwarfs every technology-
        dependent power term, so TOPS/W barely moves across technologies."""
        reports = {r.spec.technology: r for r in technology_sweep()}
        values = [r.tops_per_watt for r in reports.values()]
        assert max(values) / min(values) < 1.1
        for r in reports.values():
            assert r.compute_power_w > 10 * (
                r.standby_power_w + r.update_power_w
            )

    def test_endurance_limits_lifetime(self):
        """The technology differentiator: weight-update traffic wears
        ReRAM out in under a year; MRAM/SRAM are effectively immortal."""
        reports = {r.spec.technology: r for r in technology_sweep()}
        year = 3.15e7
        assert reports["reram"].endurance_lifetime_s < year
        assert reports["pcm"].endurance_lifetime_s > reports[
            "reram"
        ].endurance_lifetime_s
        assert reports["mram"].endurance_lifetime_s > 1e6 * year

    def test_zero_update_rate_infinite_lifetime(self):
        import math

        report = dimension_chip(ChipSpec(weight_update_rate=0.0))
        assert math.isinf(report.endurance_lifetime_s)
        assert report.update_power_w == 0.0
