"""Cross-module integration tests: full pipelines spanning subsystems."""

import numpy as np
import pytest

from repro.apps.datasets import gaussian_blobs
from repro.apps.nn import MLP, CrossbarMLP
from repro.core.cim_core import CIMCore, CIMCoreParams
from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.eda.benchmarks import ripple_carry_adder
from repro.eda.flow import EdaFlow
from repro.faults.endurance import EnduranceModel, EnduranceSimulator
from repro.faults.injection import FaultInjector
from repro.testing.abft import AbftProtectedVMM
from repro.testing.changepoint import CusumDetector, OnlinePowerTestbench
from repro.testing.march import MarchTestRunner, march_c_star
from repro.testing.online_voltage import VoltageComparisonTester
from repro.testing.sneak_path_test import SneakPathTester


class TestManufactureTestDeployPipeline:
    """Fabricate (with defects) -> screen (sneak-path) -> deploy (only if
    clean) — the production flow Section III implies."""

    def test_defective_array_screened_out(self):
        reference = np.full((16, 16), 5e-5)
        screened = {"clean": 0, "rejected": 0}
        for seed in range(10):
            array = CrossbarArray(CrossbarConfig(rows=16, cols=16), rng=seed)
            array.program(reference)
            injector = FaultInjector(array, rng=seed + 100)
            # Half the dies get faults.
            if seed % 2 == 0:
                injector.inject_exact_count(4)
            report = SneakPathTester(array).run(reference)
            if report.fault_detected:
                screened["rejected"] += 1
            else:
                screened["clean"] += 1
        assert screened["rejected"] == 5
        assert screened["clean"] == 5


class TestFieldMonitoringPipeline:
    """Deploy -> monitor power -> detect wear-out -> locate -> repair."""

    def test_detect_then_localize_then_repair(self):
        bench = OnlinePowerTestbench(
            rows=32, cols=32, fault_rate=0.08, inject_at=300,
            activity=0.85, rng=21,
        )
        trace = bench.run(600)
        detected_at = bench.detect(trace, CusumDetector())
        assert detected_at is not None and detected_at >= 300

        # On detection, run the voltage-comparison localization.
        tester = VoltageComparisonTester(bench.array)
        report = tester.detect("sa1")
        true_cells = bench.array.stuck_mask
        true_set = {tuple(map(int, c)) for c in zip(*np.nonzero(true_cells))}
        recall, precision = report.localization_precision(true_set)
        assert recall > 0.8

        # "Repair" = release the located cells (remap model) and verify
        # the power signature returns toward baseline.
        for row, col in report.localized_cells:
            if true_cells[row, col]:
                bench.array.release_cell(row, col)
        assert bench.array.fault_count() < len(true_set) * 0.2


class TestEnduranceAbftPipeline:
    """Wear-out accumulates during operation; ABFT keeps the VMM honest
    until the fault density defeats it."""

    def test_abft_tracks_growing_fault_population(self, rng):
        weights = rng.uniform(0.1, 1.0, (12, 8))
        engine = AbftProtectedVMM(weights, rng=0)
        x = rng.uniform(0.3, 1.0, 12)
        reference = engine.reference_multiply(x)

        sim = EnduranceSimulator(
            engine.array,
            EnduranceModel(characteristic_life=500, shape=2.0),
            rng=1,
        )
        sim.cycle(200)  # age the array
        if engine.array.fault_count() == 0:
            sim.cycle(300)
        assert engine.array.fault_count() > 0

        engine.periodic_test()
        corrected, _ = engine.multiply(x)
        uncorrected = x @ (
            engine.array.conductances()[:, :-1] / engine.g_unit
        )
        assert np.abs(corrected - reference).max() < np.abs(
            uncorrected - reference
        ).max()


class TestEdaToCrossbarPipeline:
    """Synthesize a circuit, map with MAGIC, and cross-check the mapped
    program against a software adder — logic-in-memory end to end."""

    def test_adder_through_full_flow(self):
        aig = ripple_carry_adder(3)
        results = EdaFlow().run(aig)
        assert all(r.verified for r in results.values())

    def test_march_screen_before_logic_deployment(self):
        """Logic-in-memory needs fault-free devices: march-test first."""
        from repro.testing.march import FaultyBitMemory

        memory = FaultyBitMemory(64)
        assert not MarchTestRunner(march_c_star()).run(memory).fail


class TestTrainDeployInjectPipeline:
    """Software training -> CIM deployment -> fault injection -> accuracy,
    all through public APIs."""

    def test_end_to_end_accuracy_chain(self):
        x, y = gaussian_blobs(
            n_samples=240, n_features=16, n_classes=4, separation=2.0, rng=30
        )
        mlp = MLP([16, 12, 4], rng=31)
        mlp.train(x[:160], y[:160], epochs=40, rng=32)
        sw_acc = mlp.accuracy(x[160:], y[160:])
        assert sw_acc > 0.85

        deployed = CrossbarMLP(mlp, calibration=x[:160], rng=33)
        hw_acc = deployed.accuracy(x[160:], y[160:], noisy=False)
        assert hw_acc > sw_acc - 0.1

        deployed.inject_yield_faults(0.5, rng=34)
        faulty_acc = deployed.accuracy(x[160:], y[160:], noisy=False)
        assert faulty_acc < hw_acc


class TestCimCoreWithScreening:
    def test_core_accuracy_after_screen_and_repair(self, rng):
        core = CIMCore(CIMCoreParams(rows=16, logical_cols=8), rng=40)
        w = rng.uniform(-1, 1, (16, 8))
        core.program_weights(w)
        injector = FaultInjector(core.array, rng=41)
        injector.inject_exact_count(3)

        tester = VoltageComparisonTester(core.array)
        sa0, sa1 = tester.detect_bidirectional()
        located = sa0.localized_cells | sa1.localized_cells
        for row, col in located:
            core.array.release_cell(row, col)
        core.program_weights(w)

        x = rng.uniform(0, 1, 16)
        y = core.vmm(x, noisy=False)
        assert np.corrcoef(y, x @ w)[0, 1] > 0.99
