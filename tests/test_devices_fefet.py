"""Tests for the FeFET compact model."""

import pytest

from repro.devices.fefet import FeFET, FeFETParams, PolarizationState


class TestParams:
    def test_program_ratio_in_paper_band(self):
        """'the voltage for programming has to be two to three times larger
        than the typical operation voltage'."""
        p = FeFETParams()
        assert 2.0 <= p.program_voltage_ratio <= 3.0

    def test_coercive_must_exceed_operating(self):
        with pytest.raises(ValueError, match="coercive"):
            FeFETParams(coercive_voltage=0.5, operating_voltage=0.8)


class TestPolarization:
    def test_initial_state(self):
        dev = FeFET(polarization=-1.0)
        assert dev.polarization_state is PolarizationState.DOWN

    def test_subcoercive_pulse_is_ignored(self):
        """Normal logic swings must not disturb the stored state."""
        dev = FeFET(polarization=-1.0)
        dev.program_pulse(dev.params.operating_voltage)
        assert dev.polarization == -1.0

    def test_coercive_pulse_switches(self):
        dev = FeFET(polarization=-1.0)
        dev.program_pulse(+dev.params.coercive_voltage * 1.2)
        assert dev.polarization_state is PolarizationState.UP

    def test_short_pulse_partial_switching(self):
        """Sub-tau pulses give intermediate polarization — the analog
        synapse behaviour of [109]-[112]."""
        dev = FeFET(polarization=-1.0)
        dev.program_pulse(
            +dev.params.coercive_voltage * 1.2,
            duration=0.5 * dev.params.switching_time,
        )
        assert dev.polarization_state is PolarizationState.INTERMEDIATE

    def test_set_helpers(self):
        dev = FeFET()
        dev.set_lrs()
        assert dev.polarization_state is PolarizationState.UP
        dev.set_hrs()
        assert dev.polarization_state is PolarizationState.DOWN

    def test_invalid_polarization_rejected(self):
        with pytest.raises(ValueError):
            FeFET(polarization=2.0)


class TestCurrent:
    def test_lrs_conducts_more_than_hrs(self):
        p = FeFETParams()
        lrs = FeFET(p, polarization=+1.0)
        hrs = FeFET(p, polarization=-1.0)
        v = p.operating_voltage
        assert lrs.drain_current(v) > 100 * hrs.drain_current(v)

    def test_threshold_shift_direction(self):
        p = FeFETParams()
        assert FeFET(p, +1.0).threshold_voltage < FeFET(p, -1.0).threshold_voltage

    def test_on_off_ratio_large(self):
        assert FeFET().on_off_ratio() > 1e3

    def test_on_off_ratio_preserves_state(self):
        dev = FeFET(polarization=0.3)
        dev.on_off_ratio()
        assert dev.polarization == pytest.approx(0.3)

    def test_is_conducting_switch_view(self):
        p = FeFETParams()
        dev = FeFET(p, polarization=+1.0)
        assert dev.is_conducting(p.operating_voltage)
        assert not dev.is_conducting(-p.operating_voltage)

    def test_current_increases_with_gate_voltage(self):
        dev = FeFET(polarization=+1.0)
        i1 = dev.drain_current(0.4)
        i2 = dev.drain_current(0.8)
        assert i2 > i1
