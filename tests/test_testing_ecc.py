"""Tests for Hamming SEC-DED ECC and its BER limit ([51])."""

import math

import numpy as np
import pytest

from repro.faults.endurance import EnduranceModel, EnduranceSimulator
from repro.testing.ecc import EccAnalysis, HammingSecDed


class TestCodeConstruction:
    def test_72_64_memory_code(self):
        code = HammingSecDed(64)
        assert code.codeword_bits == 72
        assert code.parity_bits == 7

    def test_small_codes(self):
        assert HammingSecDed(4).codeword_bits == 8   # (8,4) extended Hamming
        assert HammingSecDed(11).codeword_bits == 16

    def test_overhead(self):
        assert HammingSecDed(64).overhead == pytest.approx(8 / 64)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            HammingSecDed(0)


class TestEncodeDecode:
    @pytest.mark.parametrize("data_bits", [4, 16, 64])
    def test_clean_round_trip(self, data_bits, rng):
        code = HammingSecDed(data_bits)
        data = rng.integers(0, 2, data_bits).astype(np.int8)
        decoded, status = code.decode(code.encode(data))
        assert status == "ok"
        assert np.array_equal(decoded, data)

    def test_every_single_error_corrected(self, rng):
        code = HammingSecDed(16)
        data = rng.integers(0, 2, 16).astype(np.int8)
        codeword = code.encode(data)
        for position in range(code.codeword_bits):
            received = codeword.copy()
            received[position] ^= 1
            decoded, status = code.decode(received)
            assert status == "corrected"
            assert np.array_equal(decoded, data), f"failed at bit {position}"

    def test_double_errors_detected(self, rng):
        code = HammingSecDed(16)
        data = rng.integers(0, 2, 16).astype(np.int8)
        codeword = code.encode(data)
        detections = 0
        trials = 0
        for i in range(0, code.codeword_bits, 3):
            for j in range(i + 1, code.codeword_bits, 5):
                received = codeword.copy()
                received[i] ^= 1
                received[j] ^= 1
                _, status = code.decode(received)
                trials += 1
                if status == "detected":
                    detections += 1
        assert detections == trials  # SEC-DED guarantees double detection

    def test_shape_validation(self):
        code = HammingSecDed(8)
        with pytest.raises(ValueError):
            code.encode(np.zeros(7, dtype=np.int8))
        with pytest.raises(ValueError):
            code.decode(np.zeros(10, dtype=np.int8))


class TestBlockCodec:
    """The vectorized block codec must be bit-identical to the scalar
    reference path, word for word."""

    @pytest.mark.parametrize("data_bits", [4, 16, 64])
    def test_encode_block_matches_scalar(self, data_bits, rng):
        code = HammingSecDed(data_bits)
        data = rng.integers(0, 2, size=(50, data_bits)).astype(np.int8)
        block = code.encode_block(data)
        reference = np.stack([code.encode(d) for d in data])
        assert np.array_equal(block, reference)

    @pytest.mark.parametrize("data_bits", [4, 16, 64])
    def test_decode_block_matches_scalar(self, data_bits, rng):
        from repro.testing.ecc import (
            STATUS_CORRECTED,
            STATUS_DETECTED,
            STATUS_OK,
        )

        names = {
            STATUS_OK: "ok",
            STATUS_CORRECTED: "corrected",
            STATUS_DETECTED: "detected",
        }
        code = HammingSecDed(data_bits)
        data = rng.integers(0, 2, size=(60, data_bits)).astype(np.int8)
        received = code.encode_block(data)
        for i in range(received.shape[0]):
            n_flips = i % 4  # clean, single, double, triple error words
            pos = rng.choice(code.codeword_bits, size=n_flips, replace=False)
            received[i, pos] ^= 1
        block_data, block_status = code.decode_block(received)
        for i in range(received.shape[0]):
            ref_data, ref_status = code.decode(received[i])
            assert np.array_equal(block_data[i], ref_data), f"word {i}"
            assert names[int(block_status[i])] == ref_status, f"word {i}"

    def test_block_shapes_validated(self):
        code = HammingSecDed(8)
        with pytest.raises(ValueError):
            code.encode_block(np.zeros((3, 7), dtype=np.int8))
        with pytest.raises(ValueError):
            code.decode_block(np.zeros((3, 10), dtype=np.int8))

    def test_non_binary_block_rejected(self):
        code = HammingSecDed(8)
        with pytest.raises(ValueError, match="binary"):
            code.encode_block(np.full((2, 8), 2, dtype=np.int8))


class TestBerAnalysis:
    def test_failure_probability_tiny_at_1e_5(self):
        """The paper's operating regime: ECC works when BER < 1e-5."""
        analysis = EccAnalysis(HammingSecDed(64))
        assert analysis.word_failure_probability(1e-5) < 1e-6

    def test_failure_probability_large_at_1e_2(self):
        analysis = EccAnalysis(HammingSecDed(64))
        assert analysis.word_failure_probability(1e-2) > 0.1

    def test_sweep_monotone(self):
        analysis = EccAnalysis(HammingSecDed(64))
        rows = analysis.ber_sweep([1e-6, 1e-5, 1e-4, 1e-3, 1e-2])
        probs = [r["word_failure_probability"] for r in rows]
        assert probs == sorted(probs)

    @pytest.mark.parametrize("ber", [1e-5, 1e-7, 1e-9])
    def test_failure_probability_matches_exact_binomial_tail(self, ber):
        """Regression for the catastrophic-cancellation bug: the old
        ``1 - p_ok - p_one`` form returned pure rounding noise below
        BER ~1e-6.  The stable tail sum must agree with an exact
        rational-arithmetic reference to < 1e-9 relative error."""
        from fractions import Fraction

        analysis = EccAnalysis(HammingSecDed(64))
        n = analysis.code.codeword_bits
        p = Fraction(ber)  # the exact float the computation actually uses
        q = 1 - p
        exact = sum(
            Fraction(math.comb(n, k)) * p**k * q ** (n - k)
            for k in range(2, n + 1)
        )
        got = Fraction(analysis.word_failure_probability(ber))
        assert abs(got - exact) / exact < Fraction(1, 10**9)

    def test_failure_probability_positive_at_tiny_ber(self):
        # The cancelling form went negative here; the tail sum cannot.
        analysis = EccAnalysis(HammingSecDed(64))
        assert analysis.word_failure_probability(1e-12) > 0.0
        assert analysis.word_failure_probability(0.0) == 0.0

    def test_monte_carlo_matches_analytic(self):
        analysis = EccAnalysis(HammingSecDed(16))
        ber = 0.02
        empirical = analysis.monte_carlo_failure_rate(ber, trials=3000, rng=0)
        analytic = analysis.word_failure_probability(ber)
        assert empirical == pytest.approx(analytic, rel=0.35)

    def test_endurance_eventually_exceeds_capability(self):
        """'more devices will be worn out over time and eventually the
        number of hard faults will exceed the ECCs correction capability'."""
        from repro.crossbar.array import CrossbarArray, CrossbarConfig

        array = CrossbarArray(CrossbarConfig(rows=16, cols=16), rng=0)
        array.program(np.full((16, 16), 5e-5))
        sim = EnduranceSimulator(
            array, EnduranceModel(characteristic_life=1e4, shape=2.0), rng=1
        )
        series = sim.run_until(total_writes=5e4, step=2e3)
        analysis = EccAnalysis(HammingSecDed(64))
        exceeded_at = analysis.capability_exceeded_at(series)
        assert math.isfinite(exceeded_at)
        assert exceeded_at <= 5e4

    def test_capability_exceeded_semantics_pinned(self):
        """The math is per-codeword (dead_fraction * codeword_bits > t);
        the historical ``words_per_array`` parameter was declared but
        never used and has been removed — pin both the signature and the
        threshold semantics."""
        import inspect

        params = inspect.signature(
            EccAnalysis.capability_exceeded_at
        ).parameters
        assert "words_per_array" not in params
        assert list(params) == ["self", "dead_fraction_series"]

        analysis = EccAnalysis(HammingSecDed(64))  # n=72, t=1
        series = [
            {"writes": 1e3, "dead_fraction": 0.010},  # 0.72 bits expected
            {"writes": 2e3, "dead_fraction": 0.015},  # 1.08 bits -> exceeded
            {"writes": 3e3, "dead_fraction": 0.030},
        ]
        assert analysis.capability_exceeded_at(series) == 2e3
        assert analysis.capability_exceeded_at(series[:1]) == math.inf

    def test_capability_threshold_scales_with_t(self):
        """A t=2 code survives the dead-fraction point that defeats
        SEC-DED: the threshold is the code's capability, not a hardwired
        1.0."""
        from repro.testing.ecc import make_code

        series = [
            {"writes": 1e3, "dead_fraction": 0.020},
            {"writes": 2e3, "dead_fraction": 0.040},
        ]
        secded = EccAnalysis(make_code("secded", 64))  # n=72
        bch = EccAnalysis(make_code("bch", 64))        # n=78, t=2
        assert secded.capability_exceeded_at(series) == 1e3
        # 0.02 * 78 = 1.56 < 2; 0.04 * 78 = 3.12 > 2.
        assert bch.capability_exceeded_at(series) == 2e3
