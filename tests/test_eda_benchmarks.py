"""Tests for the EDA benchmark circuit generators."""

import pytest

from repro.eda.benchmarks import (
    array_multiplier,
    comparator,
    majority_n,
    multiplexer,
    parity,
    random_function,
    ripple_carry_adder,
    standard_suite,
)


def _as_int(bits):
    return sum(b << i for i, b in enumerate(bits))


class TestAdder:
    @pytest.mark.parametrize("n_bits", [1, 2, 4])
    def test_exhaustive_addition(self, n_bits):
        aig = ripple_carry_adder(n_bits)
        for a in range(1 << n_bits):
            for b in range(1 << n_bits):
                inputs = [(a >> i) & 1 for i in range(n_bits)] + [
                    (b >> i) & 1 for i in range(n_bits)
                ]
                outputs = aig.simulate(inputs)
                assert _as_int(outputs) == a + b

    def test_output_count(self):
        assert len(ripple_carry_adder(4).outputs) == 5


class TestParity:
    @pytest.mark.parametrize("n_bits", [2, 5, 8])
    def test_exhaustive(self, n_bits):
        aig = parity(n_bits)
        for m in range(1 << n_bits):
            inputs = [(m >> i) & 1 for i in range(n_bits)]
            assert aig.simulate(inputs)[0] == sum(inputs) % 2


class TestMajority:
    @pytest.mark.parametrize("n_bits", [3, 5, 7])
    def test_exhaustive(self, n_bits):
        aig = majority_n(n_bits)
        for m in range(1 << n_bits):
            inputs = [(m >> i) & 1 for i in range(n_bits)]
            assert aig.simulate(inputs)[0] == int(sum(inputs) > n_bits // 2)

    def test_even_rejected(self):
        with pytest.raises(ValueError):
            majority_n(4)


class TestMux:
    def test_4_to_1(self):
        aig = multiplexer(2)
        for data in range(16):
            for sel in range(4):
                inputs = [(data >> i) & 1 for i in range(4)] + [
                    sel & 1,
                    (sel >> 1) & 1,
                ]
                assert aig.simulate(inputs)[0] == (data >> sel) & 1


class TestComparator:
    @pytest.mark.parametrize("n_bits", [2, 3])
    def test_exhaustive_greater_than(self, n_bits):
        aig = comparator(n_bits)
        for a in range(1 << n_bits):
            for b in range(1 << n_bits):
                inputs = [(a >> i) & 1 for i in range(n_bits)] + [
                    (b >> i) & 1 for i in range(n_bits)
                ]
                assert aig.simulate(inputs)[0] == int(a > b)


class TestMultiplier:
    @pytest.mark.parametrize("n_bits", [2, 3])
    def test_exhaustive_product(self, n_bits):
        aig = array_multiplier(n_bits)
        for a in range(1 << n_bits):
            for b in range(1 << n_bits):
                inputs = [(a >> i) & 1 for i in range(n_bits)] + [
                    (b >> i) & 1 for i in range(n_bits)
                ]
                assert _as_int(aig.simulate(inputs)) == a * b


class TestRandomAndSuite:
    def test_random_function_deterministic(self):
        assert random_function(4, rng=5) == random_function(4, rng=5)

    def test_random_function_bounds(self):
        with pytest.raises(ValueError):
            random_function(0)

    def test_standard_suite_contents(self):
        suite = standard_suite()
        assert "adder8" in suite
        assert "majority5" in suite
        assert all(aig.outputs for aig in suite.values())
