"""Tests for the ECC co-design advisor (code x yield x workload sweep)."""

import json

import pytest

from repro.costs import use_model
from repro.testing.ecc_advisor import (
    ADVISOR_PARAMETERS,
    DEFAULT_CODES,
    ECC_OBJECTIVES,
    SCENARIOS,
    WorkloadScenario,
    advise_ecc,
    ecc_advisor_analysis,
)

CODES = ("secded", "bch")
YIELDS = (0.999, 0.98)
FAST = dict(codes=CODES, yields=YIELDS, mc_words=512, trials=1, workers=0)


@pytest.fixture(scope="module")
def rows():
    return advise_ecc(**FAST)


class TestScenarios:
    def test_registry_names(self):
        assert set(SCENARIOS) == {
            "read_heavy", "write_heavy", "endurance_limited",
        }
        for name, scenario in SCENARIOS.items():
            assert isinstance(scenario, WorkloadScenario)
            assert scenario.name == name

    def test_only_endurance_scenario_wears_out(self):
        assert SCENARIOS["endurance_limited"].lifetime_writes > 0
        assert SCENARIOS["read_heavy"].lifetime_writes == 0
        assert SCENARIOS["write_heavy"].lifetime_writes == 0


class TestAdviseRows:
    def test_full_grid_present(self, rows):
        assert len(rows) == len(CODES) * len(YIELDS) * len(SCENARIOS)
        cells = {(r["code"], r["cell_yield"], r["scenario"]) for r in rows}
        assert len(cells) == len(rows)

    def test_row_schema(self, rows):
        required = {
            "code", "cell_yield", "scenario", "data_bits", "check_bits",
            "codeword_bits", "overhead", "correctable_random", "ber",
            "endurance_dead_fraction", "word_failure_rate", "coverage",
            "analytic_word_failure", "area_mm2", "energy_per_word_J",
            "latency_per_word_s", "trials",
        }
        for row in rows:
            assert required <= set(row)
            assert 0.0 <= row["coverage"] <= 1.0
            assert row["energy_per_word_J"] > 0
            assert row["latency_per_word_s"] > 0
            assert row["area_mm2"] > 0

    def test_objective_keys_cover_the_table(self, rows):
        for key, _direction in ECC_OBJECTIVES.values():
            assert all(key in row for row in rows)

    def test_coverage_decreases_with_yield(self, rows):
        for code in CODES:
            for scenario in SCENARIOS:
                by_yield = {
                    r["cell_yield"]: r["coverage"]
                    for r in rows
                    if r["code"] == code and r["scenario"] == scenario
                }
                assert by_yield[0.999] >= by_yield[0.98]

    def test_bch_protects_better_than_secded(self, rows):
        # Compare on the analytic failure (deterministic) rather than the
        # Monte-Carlo coverage, whose noise at small mc_words can exceed
        # the code gap at high BER.  endurance_limited is excluded: its
        # effective BER includes a per-point sampled dead fraction, so the
        # two codes do not see the same channel there.
        for cell_yield in YIELDS:
            for scenario in ("read_heavy", "write_heavy"):
                fail = {
                    r["code"]: r["analytic_word_failure"]
                    for r in rows
                    if r["cell_yield"] == cell_yield
                    and r["scenario"] == scenario
                }
                assert fail["bch"] < fail["secded"]

    def test_bch_costs_more_than_secded(self, rows):
        # More check bits -> strictly more area and write energy.
        pick = {
            r["code"]: r
            for r in rows
            if r["scenario"] == "write_heavy" and r["cell_yield"] == 0.999
        }
        assert pick["bch"]["area_mm2"] > pick["secded"]["area_mm2"]
        assert (
            pick["bch"]["energy_per_word_J"]
            > pick["secded"]["energy_per_word_J"]
        )

    def test_endurance_raises_effective_ber(self, rows):
        for code in CODES:
            wear = {
                r["scenario"]: r["ber"]
                for r in rows
                if r["code"] == code and r["cell_yield"] == 0.999
            }
            assert wear["endurance_limited"] > wear["read_heavy"]

    def test_serial_parallel_bit_identical(self):
        serial = advise_ecc(**{**FAST, "workers": 0})
        parallel = advise_ecc(**{**FAST, "workers": 2})
        assert serial == parallel

    def test_deterministic_across_calls(self, rows):
        assert rows == advise_ecc(**FAST)

    def test_seed_changes_statistics(self, rows):
        reseeded = advise_ecc(**{**FAST, "seed": 123})
        assert any(
            a["word_failure_rate"] != b["word_failure_rate"]
            for a, b in zip(rows, reseeded)
            # only rows with some failures can differ
            if a["word_failure_rate"] not in (0.0, 1.0)
        )

    def test_with_report_conserves(self):
        rows, report = advise_ecc(**FAST, with_report=True)
        assert len(rows) == len(CODES) * len(YIELDS) * len(SCENARIOS)
        report.validate()
        data = report.to_dict()
        assert data["counters"]

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError, match="unknown ECC code"):
            advise_ecc(codes=("hamming1950",), trials=1)
        with pytest.raises(ValueError, match="unknown scenario"):
            advise_ecc(scenarios=("cold_storage",), trials=1)
        with pytest.raises(ValueError, match="cell_yield"):
            advise_ecc(yields=(1.5,), trials=1)
        with pytest.raises(ValueError, match="trials"):
            advise_ecc(trials=0)
        with pytest.raises(ValueError, match="mc_words"):
            advise_ecc(mc_words=0)

    def test_value_aware_model_prices_differently(self):
        static_rows = advise_ecc(**FAST)
        with use_model("value_aware"):
            aware_rows = advise_ecc(**FAST)
        # Statistical fields identical (pricing cannot change the MC),
        # energy bounded by static, latency identical.
        for s, a in zip(static_rows, aware_rows):
            assert a["coverage"] == s["coverage"]
            assert a["energy_per_word_J"] <= s["energy_per_word_J"]
            assert a["latency_per_word_s"] == s["latency_per_word_s"]


class TestAnalysis:
    def test_structure(self, rows):
        advice = ecc_advisor_analysis(rows)
        assert advice["objectives"] == ["area", "energy", "latency",
                                        "coverage"]
        assert advice["points"] == len(rows)
        assert advice["front"]
        assert advice["knee"] is not None
        knee_rows = [r for r in advice["front"] if r["knee"]]
        assert len(knee_rows) == 1
        assert knee_rows[0]["code"] == advice["knee"]["code"]
        assert set(advice["sensitivity"]) == set(ADVISOR_PARAMETERS)

    def test_front_is_non_dominated(self, rows):
        advice = ecc_advisor_analysis(rows)
        front = advice["front"]
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    b["area_mm2"] <= a["area_mm2"]
                    and b["energy_per_word_J"] <= a["energy_per_word_J"]
                    and b["latency_per_word_s"] <= a["latency_per_word_s"]
                    and b["coverage"] >= a["coverage"]
                    and (
                        b["area_mm2"] < a["area_mm2"]
                        or b["energy_per_word_J"] < a["energy_per_word_J"]
                        or b["latency_per_word_s"] < a["latency_per_word_s"]
                        or b["coverage"] > a["coverage"]
                    )
                )
                assert not dominates

    def test_one_recommendation_per_cell(self, rows):
        advice = ecc_advisor_analysis(rows)
        recs = advice["recommendations"]
        assert len(recs) == len(YIELDS) * len(SCENARIOS)
        cells = {(r["scenario"], r["cell_yield"]) for r in recs}
        assert len(cells) == len(recs)
        for rec in recs:
            assert rec["code"] in CODES

    def test_json_round_trip(self, rows):
        advice = ecc_advisor_analysis(rows)
        payload = json.loads(json.dumps({"rows": rows, "advice": advice}))
        assert payload["advice"]["knee"]["code"] == advice["knee"]["code"]

    def test_default_codes_cover_registry(self):
        from repro.testing.ecc import CODES as REGISTRY

        assert set(DEFAULT_CODES) == set(REGISTRY)
