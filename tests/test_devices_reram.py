"""Tests for the multilevel ReRAM cell."""

import numpy as np
import pytest

from repro.devices.reram import (
    CellError,
    ConductanceLevels,
    ReRAMCell,
    ReRAMCellParams,
)
from repro.devices.variability import (
    DriftModel,
    ReadNoiseModel,
    VariabilityStack,
    WriteVariationModel,
)


class TestConductanceLevels:
    def test_targets_span_range(self):
        levels = ConductanceLevels(g_min=1e-6, g_max=1e-4, n_levels=4)
        targets = levels.targets()
        assert targets[0] == pytest.approx(1e-6)
        assert targets[-1] == pytest.approx(1e-4)
        assert len(targets) == 4

    def test_quantize_round_trip(self):
        levels = ConductanceLevels(n_levels=8)
        for level in range(8):
            assert levels.quantize(levels.target(level)) == level

    def test_quantize_clips(self):
        levels = ConductanceLevels(n_levels=4)
        assert levels.quantize(0.0) == 0
        assert levels.quantize(1.0) == 3

    def test_noise_margin_accepts_nearby(self):
        levels = ConductanceLevels(n_levels=4, noise_margin_fraction=0.3)
        g = levels.target(1) + 0.2 * levels.spacing
        assert levels.in_noise_margin(g, 1)

    def test_guard_band_between_levels(self):
        levels = ConductanceLevels(n_levels=4, noise_margin_fraction=0.3)
        midpoint = 0.5 * (levels.target(0) + levels.target(1))
        assert levels.in_guard_band(midpoint)
        assert not levels.in_guard_band(levels.target(2))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ConductanceLevels(g_min=1e-4, g_max=1e-6)
        with pytest.raises(ValueError):
            ConductanceLevels(n_levels=1)
        with pytest.raises(ValueError):
            ConductanceLevels(noise_margin_fraction=0.6)

    def test_level_bounds_checked(self):
        levels = ConductanceLevels(n_levels=4)
        with pytest.raises(ValueError):
            levels.target(4)


class TestReRAMCellLifecycle:
    def test_pristine_cell_rejects_operations(self):
        cell = ReRAMCell(rng=0)
        with pytest.raises(CellError):
            cell.program(0)
        with pytest.raises(CellError):
            cell.read()

    def test_forming_enables_cell(self):
        cell = ReRAMCell(rng=0)
        cell.form()
        assert cell.formed
        # Forming leaves the cell in the LRS.
        top = cell.params.levels.n_levels - 1
        assert cell.read_level() == top

    def test_double_forming_rejected(self):
        cell = ReRAMCell(rng=0)
        cell.form()
        with pytest.raises(CellError):
            cell.form()

    def test_over_forming_sticks_cell(self):
        params = ReRAMCellParams(over_forming_probability=1.0)
        cell = ReRAMCell(params, rng=0)
        cell.form()
        assert cell.stuck
        assert cell.stuck_level == params.levels.n_levels - 1

    def test_program_and_read_each_level(self):
        cell = ReRAMCell(rng=0)
        cell.form()
        for level in range(cell.params.levels.n_levels):
            cell.program(level)
            assert cell.read_level() == level

    def test_program_counts_writes(self):
        cell = ReRAMCell(rng=0)
        cell.form()
        cell.program(0)
        cell.program(1)
        assert cell.write_count == 2
        assert cell.writes_remaining == cell.params.endurance - 2


class TestReRAMCellVariability:
    def test_write_variation_spreads_conductance(self, rng):
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.1),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=0.0),
        )
        landed = []
        for seed in range(30):
            cell = ReRAMCell(variability=stack, rng=seed)
            cell.form()
            landed.append(cell.program(1))
        assert np.std(landed) > 0

    def test_program_with_verify_converges(self):
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.1),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=0.0),
        )
        cell = ReRAMCell(variability=stack, rng=3)
        cell.form()
        pulses = cell.program_with_verify(1, max_iterations=20)
        assert pulses >= 1
        assert cell.params.levels.in_noise_margin(cell.conductance, 1)

    def test_drift_relaxes_conductance(self):
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.0),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=0.05),
        )
        cell = ReRAMCell(variability=stack, rng=0)
        cell.form()
        cell.program(1)
        g0 = cell.conductance
        cell.relax(1000.0)
        assert cell.conductance < g0


class TestEnduranceWearout:
    def test_exceeding_endurance_sticks_cell(self):
        params = ReRAMCellParams(endurance=5)
        cell = ReRAMCell(params, rng=0)
        cell.form()
        for _ in range(6):
            cell.program(1)
        assert cell.stuck

    def test_worn_cell_sticks_at_extreme(self):
        """Wear-out pins the cell at level 0 or level max — the paper's
        observation that stuck cells take extreme values."""
        params = ReRAMCellParams(endurance=3)
        cell = ReRAMCell(params, rng=0)
        cell.form()
        for _ in range(5):
            cell.program(1)
        assert cell.stuck_level in (0, params.levels.n_levels - 1)

    def test_stuck_cell_ignores_programming(self):
        cell = ReRAMCell(rng=0)
        cell.force_stuck(0)
        g = cell.conductance
        cell.program(cell.params.levels.n_levels - 1)
        assert cell.conductance == g


class TestParamsValidation:
    def test_reset_must_be_negative(self):
        with pytest.raises(ValueError, match="reset_voltage"):
            ReRAMCellParams(reset_voltage=1.0)

    def test_read_below_set(self):
        with pytest.raises(ValueError, match="read_voltage"):
            ReRAMCellParams(set_voltage=1.0, read_voltage=1.5)

    def test_endurance_positive(self):
        with pytest.raises(ValueError, match="endurance"):
            ReRAMCellParams(endurance=0)
