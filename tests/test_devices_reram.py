"""Tests for the multilevel ReRAM cell."""

import numpy as np
import pytest

from repro.devices.reram import (
    CellError,
    ConductanceLevels,
    ReRAMCell,
    ReRAMCellParams,
)
from repro.devices.variability import (
    DriftModel,
    ReadNoiseModel,
    VariabilityStack,
    WriteVariationModel,
)


class TestConductanceLevels:
    def test_targets_span_range(self):
        levels = ConductanceLevels(g_min=1e-6, g_max=1e-4, n_levels=4)
        targets = levels.targets()
        assert targets[0] == pytest.approx(1e-6)
        assert targets[-1] == pytest.approx(1e-4)
        assert len(targets) == 4

    def test_quantize_round_trip(self):
        levels = ConductanceLevels(n_levels=8)
        for level in range(8):
            assert levels.quantize(levels.target(level)) == level

    def test_quantize_clips(self):
        levels = ConductanceLevels(n_levels=4)
        assert levels.quantize(0.0) == 0
        assert levels.quantize(1.0) == 3

    def test_noise_margin_accepts_nearby(self):
        levels = ConductanceLevels(n_levels=4, noise_margin_fraction=0.3)
        g = levels.target(1) + 0.2 * levels.spacing
        assert levels.in_noise_margin(g, 1)

    def test_guard_band_between_levels(self):
        levels = ConductanceLevels(n_levels=4, noise_margin_fraction=0.3)
        midpoint = 0.5 * (levels.target(0) + levels.target(1))
        assert levels.in_guard_band(midpoint)
        assert not levels.in_guard_band(levels.target(2))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ConductanceLevels(g_min=1e-4, g_max=1e-6)
        with pytest.raises(ValueError):
            ConductanceLevels(n_levels=1)
        with pytest.raises(ValueError):
            ConductanceLevels(noise_margin_fraction=0.6)

    def test_level_bounds_checked(self):
        levels = ConductanceLevels(n_levels=4)
        with pytest.raises(ValueError):
            levels.target(4)


class TestReRAMCellLifecycle:
    def test_pristine_cell_rejects_operations(self):
        cell = ReRAMCell(rng=0)
        with pytest.raises(CellError):
            cell.program(0)
        with pytest.raises(CellError):
            cell.read()

    def test_forming_enables_cell(self):
        cell = ReRAMCell(rng=0)
        cell.form()
        assert cell.formed
        # Forming leaves the cell in the LRS.
        top = cell.params.levels.n_levels - 1
        assert cell.read_level() == top

    def test_double_forming_rejected(self):
        cell = ReRAMCell(rng=0)
        cell.form()
        with pytest.raises(CellError):
            cell.form()

    def test_over_forming_sticks_cell(self):
        params = ReRAMCellParams(over_forming_probability=1.0)
        cell = ReRAMCell(params, rng=0)
        cell.form()
        assert cell.stuck
        assert cell.stuck_level == params.levels.n_levels - 1

    def test_program_and_read_each_level(self):
        cell = ReRAMCell(rng=0)
        cell.form()
        for level in range(cell.params.levels.n_levels):
            cell.program(level)
            assert cell.read_level() == level

    def test_program_counts_writes(self):
        cell = ReRAMCell(rng=0)
        cell.form()
        cell.program(0)
        cell.program(1)
        assert cell.write_count == 2
        assert cell.writes_remaining == cell.params.endurance - 2


class TestReRAMCellVariability:
    def test_write_variation_spreads_conductance(self, rng):
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.1),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=0.0),
        )
        landed = []
        for seed in range(30):
            cell = ReRAMCell(variability=stack, rng=seed)
            cell.form()
            landed.append(cell.program(1))
        assert np.std(landed) > 0

    def test_program_with_verify_converges(self):
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.1),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=0.0),
        )
        cell = ReRAMCell(variability=stack, rng=3)
        cell.form()
        pulses = cell.program_with_verify(1, max_iterations=20)
        assert pulses >= 1
        assert cell.params.levels.in_noise_margin(cell.conductance, 1)

    def test_drift_relaxes_conductance(self):
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.0),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=0.05),
        )
        cell = ReRAMCell(variability=stack, rng=0)
        cell.form()
        cell.program(1)
        g0 = cell.conductance
        cell.relax(1000.0)
        assert cell.conductance < g0


class TestEnduranceWearout:
    def test_exceeding_endurance_sticks_cell(self):
        params = ReRAMCellParams(endurance=5)
        cell = ReRAMCell(params, rng=0)
        cell.form()
        for _ in range(6):
            cell.program(1)
        assert cell.stuck

    def test_worn_cell_sticks_at_extreme(self):
        """Wear-out pins the cell at level 0 or level max — the paper's
        observation that stuck cells take extreme values."""
        params = ReRAMCellParams(endurance=3)
        cell = ReRAMCell(params, rng=0)
        cell.form()
        for _ in range(5):
            cell.program(1)
        assert cell.stuck_level in (0, params.levels.n_levels - 1)

    def test_stuck_cell_ignores_programming(self):
        cell = ReRAMCell(rng=0)
        cell.force_stuck(0)
        g = cell.conductance
        cell.program(cell.params.levels.n_levels - 1)
        assert cell.conductance == g


class TestParamsValidation:
    def test_reset_must_be_negative(self):
        with pytest.raises(ValueError, match="reset_voltage"):
            ReRAMCellParams(reset_voltage=1.0)

    def test_read_below_set(self):
        with pytest.raises(ValueError, match="read_voltage"):
            ReRAMCellParams(set_voltage=1.0, read_voltage=1.5)

    def test_endurance_positive(self):
        with pytest.raises(ValueError, match="endurance"):
            ReRAMCellParams(endurance=0)


class TestWriteVerifyBackends:
    """program_with_verify's fast backend must be bit-equal to the scalar
    reference — pulse count, landed conductance, write counter, wear-out,
    and the generator state afterwards."""

    @staticmethod
    def _noisy_cell(seed, **params_kw):
        stack = VariabilityStack(
            write=WriteVariationModel(sigma=0.12),
            read=ReadNoiseModel(sigma=0.0),
            drift=DriftModel(nu=0.0),
        )
        cell = ReRAMCell(
            params=ReRAMCellParams(**params_kw) if params_kw else None,
            variability=stack,
            rng=seed,
        )
        cell.form()
        return cell

    def test_bit_equal_including_rng_state(self):
        for seed in range(12):
            ref = self._noisy_cell(seed)
            fast = self._noisy_cell(seed)
            p_ref = ref.program_with_verify(1, max_iterations=20,
                                            backend="scalar")
            p_fast = fast.program_with_verify(1, max_iterations=20,
                                              backend="fast")
            assert p_fast == p_ref
            assert fast.conductance == ref.conductance
            assert fast.write_count == ref.write_count
            # Generator state: the next draw must coincide exactly.
            assert fast._rng.random() == ref._rng.random()

    def test_auto_is_default_and_matches_scalar(self):
        ref = self._noisy_cell(5)
        auto = self._noisy_cell(5)
        p_ref = ref.program_with_verify(0, max_iterations=8, backend="scalar")
        p_auto = auto.program_with_verify(0, max_iterations=8)
        assert p_auto == p_ref
        assert auto.conductance == ref.conductance

    def test_multilevel_targets_bit_equal(self):
        levels = ConductanceLevels(n_levels=8)
        for level in (0, 3, 7):
            ref = self._noisy_cell(2, levels=levels)
            fast = self._noisy_cell(2, levels=levels)
            assert fast.program_with_verify(
                level, max_iterations=16, backend="fast"
            ) == ref.program_with_verify(
                level, max_iterations=16, backend="scalar"
            )
            assert fast.conductance == ref.conductance

    def test_wear_out_path_bit_equal(self):
        for backend in ("scalar", "fast"):
            cell = self._noisy_cell(1, endurance=3)
            pulses = cell.program_with_verify(
                1, max_iterations=10, backend=backend
            )
            if backend == "scalar":
                ref = (pulses, cell.stuck, cell.conductance, cell.write_count)
        assert (pulses, cell.stuck, cell.conductance, cell.write_count) == ref

    def test_stuck_cell_single_pulse(self):
        for backend in ("scalar", "fast"):
            cell = self._noisy_cell(0)
            cell.force_stuck(0)
            assert cell.program_with_verify(1, backend=backend) == 1
            assert cell.stuck

    def test_unformed_cell_rejected(self):
        stack = VariabilityStack.ideal()
        for backend in ("scalar", "fast"):
            cell = ReRAMCell(variability=stack, rng=0)
            with pytest.raises(CellError, match="formed"):
                cell.program_with_verify(1, backend=backend)

    def test_bad_level_and_backend_rejected(self):
        cell = self._noisy_cell(0)
        with pytest.raises(ValueError, match="level"):
            cell.program_with_verify(99, backend="fast")
        with pytest.raises(ValueError, match="backend"):
            cell.program_with_verify(1, backend="turbo")
