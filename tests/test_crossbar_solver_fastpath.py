"""Tests for the nodal-solver fast path: vectorized assembly, exact
Dirichlet elimination, LU caching and multi-RHS batching — plus the
regression tests for the bugfixes that rode along (driver-aware
``worst_case_drop``, RMS-normalized ``relative_error``)."""

import numpy as np
import pytest

from repro.core.cim_core import CIMCore, CIMCoreParams
from repro.crossbar.solver import (
    BatchSolverResult,
    NodalCrossbarSolver,
    SolverResult,
    sneak_path_read_current,
)


def _random_case(rng, rows, cols):
    g = rng.uniform(1e-6, 1e-4, (rows, cols))
    v = rng.uniform(0.0, 0.2, rows)
    return g, v


class TestFastPathAgreesWithReference:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (1, 7), (7, 1), (6, 5), (16, 16)])
    @pytest.mark.parametrize("driver_resistance", [0.0, 1e3])
    def test_matches_loop_reference(self, rows, cols, driver_resistance):
        rng = np.random.default_rng(rows * 100 + cols)
        g, v = _random_case(rng, rows, cols)
        solver = NodalCrossbarSolver(
            wire_resistance=2.0, driver_resistance=driver_resistance
        )
        fast = solver.solve(g, v)
        ref = solver.solve_reference(g, v)
        scale = max(np.abs(ref.column_currents).max(), 1e-30)
        assert np.max(np.abs(fast.column_currents - ref.column_currents)) < 1e-10 * scale
        assert np.max(np.abs(fast.row_node_voltages - ref.row_node_voltages)) < 1e-10
        assert np.max(np.abs(fast.col_node_voltages - ref.col_node_voltages)) < 1e-10

    def test_property_random_arrays(self):
        """Randomized sweep: fast, cached and batched paths all agree with
        the loop reference to 1e-10."""
        rng = np.random.default_rng(42)
        solver = NodalCrossbarSolver(wire_resistance=1.0, driver_resistance=200.0)
        for trial in range(5):
            rows = int(rng.integers(2, 12))
            cols = int(rng.integers(2, 12))
            g, _ = _random_case(rng, rows, cols)
            batch_v = rng.uniform(0.0, 0.2, (4, rows))
            batch = solver.solve_batch(g, batch_v)
            for k in range(4):
                ref = solver.solve_reference(g, batch_v[k])
                cached = solver.solve(g, batch_v[k])
                scale = max(np.abs(ref.column_currents).max(), 1e-30)
                assert (
                    np.max(np.abs(batch.column_currents[k] - ref.column_currents))
                    < 1e-10 * scale
                )
                assert (
                    np.max(np.abs(cached.column_currents - ref.column_currents))
                    < 1e-10 * scale
                )

    def test_cached_matches_cold(self):
        """A cache-hit solve is bit-for-bit the cold solve."""
        rng = np.random.default_rng(7)
        g, v = _random_case(rng, 12, 9)
        solver = NodalCrossbarSolver(wire_resistance=3.0)
        cold = solver.solve(g, v)
        assert solver.factorizations == 1
        warm = solver.solve(g, v)
        assert solver.factorizations == 1
        assert np.array_equal(cold.column_currents, warm.column_currents)

    def test_wire_resistance_to_zero_converges_to_ideal(self):
        rng = np.random.default_rng(11)
        g, v = _random_case(rng, 10, 8)
        ideal = v @ g
        errors = []
        for r_wire in (1.0, 1e-2, 1e-4, 1e-6):
            actual = NodalCrossbarSolver(wire_resistance=r_wire).solve(g, v)
            errors.append(np.max(np.abs(actual.column_currents - ideal)))
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-12


class TestBatchSolve:
    def test_batch_matches_single_solves(self):
        rng = np.random.default_rng(3)
        g, _ = _random_case(rng, 16, 12)
        v_matrix = rng.uniform(0.0, 0.2, (8, 16))
        solver = NodalCrossbarSolver(wire_resistance=2.0, driver_resistance=500.0)
        batch = solver.solve_batch(g, v_matrix)
        assert isinstance(batch, BatchSolverResult)
        assert len(batch) == 8
        for k in range(8):
            single = NodalCrossbarSolver(
                wire_resistance=2.0, driver_resistance=500.0
            ).solve(g, v_matrix[k])
            assert np.allclose(
                batch.column_currents[k],
                single.column_currents,
                rtol=1e-10,
                atol=1e-20,
            )

    def test_batch_uses_one_factorization(self):
        rng = np.random.default_rng(5)
        g, _ = _random_case(rng, 20, 20)
        solver = NodalCrossbarSolver(wire_resistance=1.0)
        solver.solve_batch(g, rng.uniform(0, 0.2, (32, 20)))
        assert solver.factorizations == 1

    def test_batch_result_indexing(self):
        rng = np.random.default_rng(9)
        g, _ = _random_case(rng, 6, 4)
        solver = NodalCrossbarSolver(wire_resistance=1.0)
        batch = solver.solve_batch(g, rng.uniform(0, 0.2, (3, 6)))
        one = batch.result(1)
        assert isinstance(one, SolverResult)
        assert np.array_equal(one.column_currents, batch.column_currents[1])

    def test_batch_shape_validation(self):
        solver = NodalCrossbarSolver(wire_resistance=1.0)
        with pytest.raises(ValueError, match="shape"):
            solver.solve_batch(np.full((4, 4), 1e-5), np.zeros((2, 3)))

    def test_ideal_batch_matches_matmul(self):
        rng = np.random.default_rng(13)
        g, _ = _random_case(rng, 5, 7)
        v_matrix = rng.uniform(0, 0.2, (6, 5))
        solver = NodalCrossbarSolver(wire_resistance=0.0, driver_resistance=0.0)
        batch = solver.solve_batch(g, v_matrix)
        assert np.allclose(batch.column_currents, v_matrix @ g)


class TestFactorizationCache:
    def test_repeated_solves_factorize_once(self):
        """Perf smoke: the cached path must not silently regress to one
        factorization per input."""
        rng = np.random.default_rng(17)
        g, _ = _random_case(rng, 16, 16)
        solver = NodalCrossbarSolver(wire_resistance=1.0)
        for _ in range(10):
            solver.solve(g, rng.uniform(0, 0.2, 16))
        assert solver.factorizations == 1
        assert solver.cache_hits == 9

    def test_changed_conductances_refactorize(self):
        rng = np.random.default_rng(19)
        g, v = _random_case(rng, 8, 8)
        solver = NodalCrossbarSolver(wire_resistance=1.0)
        solver.solve(g, v)
        g2 = g.copy()
        g2[3, 3] *= 2
        solver.solve(g2, v)
        assert solver.factorizations == 2

    def test_invalidate_cache_drops_entries(self):
        rng = np.random.default_rng(21)
        g, v = _random_case(rng, 8, 8)
        solver = NodalCrossbarSolver(wire_resistance=1.0)
        solver.solve(g, v)
        assert solver.cache_len == 1
        solver.invalidate_cache()
        assert solver.cache_len == 0
        solver.solve(g, v)
        assert solver.factorizations == 2

    def test_cache_is_bounded(self):
        rng = np.random.default_rng(23)
        solver = NodalCrossbarSolver(wire_resistance=1.0, cache_size=2)
        for _ in range(5):
            g, v = _random_case(rng, 6, 6)
            solver.solve(g, v)
        assert solver.cache_len == 2

    def test_evictions_are_counted(self):
        """Regression: LRU evictions must be observable — both on the
        solver (``cache_evictions``) and as a telemetry counter — instead
        of silently dropping factorizations."""
        from repro.utils import telemetry

        rng = np.random.default_rng(29)
        solver = NodalCrossbarSolver(wire_resistance=1.0, cache_size=2)
        with telemetry.scoped() as scope:
            for _ in range(5):
                g, v = _random_case(rng, 6, 6)
                solver.solve(g, v)
        assert solver.cache_evictions == 3
        counters = scope.snapshot()["counters"]
        assert counters["solver.cache_evictions"] == 3

    def test_no_evictions_within_capacity(self):
        rng = np.random.default_rng(31)
        solver = NodalCrossbarSolver(wire_resistance=1.0, cache_size=8)
        for _ in range(5):
            g, v = _random_case(rng, 6, 6)
            solver.solve(g, v)
        assert solver.cache_evictions == 0

    def test_core_reports_eviction_side_counter(self):
        """The core's side counters surface the solver's eviction count,
        so accelerator/app-level reports can show cache pressure."""
        core = CIMCore(
            CIMCoreParams(rows=8, logical_cols=4, wire_resistance=2.0), rng=0
        )
        rng = np.random.default_rng(2)
        core.program_weights(rng.uniform(-1, 1, (8, 4)))
        core.vmm(rng.uniform(0, 1, 8), noisy=False)
        assert core.side_counters()["solver.cache_evictions"] == 0.0

    def test_core_vmm_reuses_factorization(self):
        """Perf smoke (tier-1): repeated noiseless IR-drop VMMs on one
        programmed core pay exactly one factorization."""
        core = CIMCore(
            CIMCoreParams(rows=16, logical_cols=8, wire_resistance=2.0), rng=0
        )
        rng = np.random.default_rng(0)
        core.program_weights(rng.uniform(-1, 1, (16, 8)))
        for _ in range(6):
            core.vmm(rng.uniform(0, 1, 16), noisy=False)
        assert core._ir_solver.factorizations == 1
        core.vmm_batch(rng.uniform(0, 1, (4, 16)), noisy=False)
        assert core._ir_solver.factorizations == 1

    def test_core_cache_invalidated_by_reprogramming(self):
        core = CIMCore(
            CIMCoreParams(rows=16, logical_cols=8, wire_resistance=2.0), rng=0
        )
        rng = np.random.default_rng(1)
        core.program_weights(rng.uniform(-1, 1, (16, 8)))
        core.vmm(rng.uniform(0, 1, 16), noisy=False)
        assert core._ir_solver.cache_len == 1
        core.program_weights(rng.uniform(-1, 1, (16, 8)))
        assert core._ir_solver.cache_len == 0
        core.vmm(rng.uniform(0, 1, 16), noisy=False)
        assert core._ir_solver.factorizations == 2


class TestCoreBatchVMM:
    def test_vmm_batch_matches_vmm_noiseless(self):
        core = CIMCore(
            CIMCoreParams(rows=16, logical_cols=8, wire_resistance=2.0), rng=0
        )
        rng = np.random.default_rng(2)
        core.program_weights(rng.uniform(-1, 1, (16, 8)))
        x = rng.uniform(0, 1, (5, 16))
        batched = core.vmm_batch(x, noisy=False)
        singles = np.stack([core.vmm(row, noisy=False) for row in x])
        assert np.allclose(batched, singles)

    def test_vmm_batch_matches_vmm_ideal_wires(self):
        core = CIMCore(CIMCoreParams(rows=16, logical_cols=8), rng=0)
        rng = np.random.default_rng(4)
        core.program_weights(rng.uniform(-1, 1, (16, 8)))
        x = rng.uniform(0, 1, (5, 16))
        batched = core.vmm_batch(x, noisy=False)
        singles = np.stack([core.vmm(row, noisy=False) for row in x])
        assert np.allclose(batched, singles)

    def test_vmm_batch_validates_shape(self):
        core = CIMCore(CIMCoreParams(rows=8, logical_cols=4), rng=0)
        core.program_weights(np.zeros((8, 4)))
        with pytest.raises(ValueError, match="shape"):
            core.vmm_batch(np.zeros((3, 7)))
        with pytest.raises(ValueError, match="batch"):
            core.vmm_batch(np.zeros((0, 8)))


class TestWorstCaseDropBugfix:
    def test_driver_droop_included(self):
        """Regression: with a stiff load and a resistive driver, most of
        the droop happens *across the driver* — the old metric referenced
        the post-driver node and reported nearly zero."""
        g = np.full((4, 4), 5e-3)  # stiff load draws real current
        v = np.full(4, 0.2)
        solver = NodalCrossbarSolver(wire_resistance=0.1, driver_resistance=50.0)
        result = solver.solve(g, v)
        post_driver_only = float(
            np.max(np.abs(result.row_node_voltages[:, 0:1] - result.row_node_voltages))
        )
        driver_droop = float(np.max(v - result.row_node_voltages[:, 0]))
        assert driver_droop > post_driver_only
        assert result.worst_case_drop >= driver_droop
        assert result.worst_case_drop > post_driver_only

    def test_ideal_driver_unchanged(self):
        g = np.full((4, 6), 5e-5)
        v = np.full(4, 0.2)
        result = NodalCrossbarSolver(wire_resistance=10.0).solve(g, v)
        direct = float(np.max(np.abs(v[:, None] - result.row_node_voltages)))
        assert result.worst_case_drop == pytest.approx(direct)

    def test_fallback_without_driven_voltages(self):
        row_v = np.array([[0.2, 0.18], [0.2, 0.19]])
        legacy = SolverResult(np.zeros(2), row_v, np.zeros((2, 2)))
        assert legacy.worst_case_drop == pytest.approx(0.02)


class TestRelativeErrorBugfix:
    def test_zero_ideal_column_does_not_explode(self):
        """Regression: a column with ~zero ideal current must not blow the
        metric up to ~1e30."""
        g = np.full((8, 8), 5e-5)
        g[:, 3] = 0.0  # ideal current exactly zero on column 3
        v = np.full(8, 0.2)
        err = NodalCrossbarSolver(wire_resistance=5.0).relative_error(g, v)
        assert err < 1.0

    def test_zero_input_vector(self):
        g = np.full((6, 6), 5e-5)
        v = np.zeros(6)
        err = NodalCrossbarSolver(wire_resistance=5.0).relative_error(g, v)
        assert err == pytest.approx(0.0, abs=1e-12)

    def test_uniform_case_matches_per_column_metric(self):
        """For uniform arrays every ideal entry equals the vector RMS, so
        the new normalization reproduces the old metric exactly."""
        g = np.full((8, 8), 5e-5)
        v = np.full(8, 0.2)
        solver = NodalCrossbarSolver(wire_resistance=5.0)
        ideal = v @ g
        actual = solver.solve(g, v).column_currents
        old_metric = float(
            np.sqrt(np.mean(((actual - ideal) / np.abs(ideal)) ** 2))
        )
        assert solver.relative_error(g, v) == pytest.approx(old_metric, rel=1e-9)


class TestSneakSchemeOrdering:
    def test_schemes_order_correctly(self):
        """Both biasing schemes over-read the selected cell; the v/2
        scheme adds the full deterministic half-select leakage of the
        selected column, so: ideal < floating < v/2."""
        for shape in [(4, 4), (8, 8), (16, 16)]:
            g = np.full(shape, 5e-5)
            floating, ideal = sneak_path_read_current(g, 1, 1, scheme="floating")
            half, ideal2 = sneak_path_read_current(g, 1, 1, scheme="v/2")
            assert ideal == ideal2
            assert ideal < floating < half

    def test_ordering_holds_on_random_arrays(self):
        rng = np.random.default_rng(29)
        for _ in range(3):
            g = rng.uniform(1e-6, 1e-4, (8, 8))
            floating, ideal = sneak_path_read_current(g, 2, 3, scheme="floating")
            half, _ = sneak_path_read_current(g, 2, 3, scheme="v/2")
            assert ideal < floating < half
