"""Tests for the Fig 12 Logic-In-Memory array cells and in-array adder."""

import pytest

from repro.devices.ferfet import FeRFETParams
from repro.ferfet.arrays import (
    AndTypeCell,
    LogicInMemoryAdder,
    NorArray,
    OrTypeCell,
)


class TestOrTypeCell:
    """Fig 12(a): stored A + volatile B at the same WL -> (N)OR."""

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_or_truth_table(self, a, b):
        cell = OrTypeCell()
        cell.store(a)
        assert cell.or_(b) == (a | b)

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_nor_is_inverted_sense(self, a, b):
        cell = OrTypeCell()
        cell.store(a)
        assert cell.nor(b) == 1 - (a | b)

    def test_requires_depletion_mode(self):
        enhancement = FeRFETParams(vth_n_lrs=0.3, vth_n_hrs=1.0)
        with pytest.raises(ValueError, match="depletion"):
            OrTypeCell(enhancement)

    def test_stored_bit_nonvolatile_across_reads(self):
        cell = OrTypeCell()
        cell.store(1)
        for _ in range(20):
            cell.conducts(0)
            cell.conducts(1)
        assert cell.stored == 1

    def test_input_validation(self):
        cell = OrTypeCell()
        with pytest.raises(ValueError):
            cell.store(2)
        cell.store(1)
        with pytest.raises(ValueError):
            cell.conducts(2)


class TestAndTypeCell:
    """Wired-AND cell: conduction = stored A AND volatile B AND select."""

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_and_conduction(self, a, b):
        cell = AndTypeCell()
        cell.store(a)
        assert int(cell.conducts(b)) == (a & b)

    def test_select_gate_blocks(self):
        cell = AndTypeCell()
        cell.store(1)
        assert not cell.conducts(1, select=0)

    def test_requires_enhancement_mode(self):
        depletion = FeRFETParams(vth_n_lrs=-0.3, vth_n_hrs=0.5)
        with pytest.raises(ValueError, match="enhancement"):
            AndTypeCell(depletion)


class TestNorArray:
    def test_aoi_two_products(self):
        """AND-OR-INVERT over two stored/applied operand pairs ([104])."""
        array = NorArray(rows=2, cols=1)
        for a1 in (0, 1):
            for a2 in (0, 1):
                array.store([[a1], [a2]])
                for b1 in (0, 1):
                    for b2 in (0, 1):
                        out = array.aoi([b1, b2])[0]
                        assert out == 1 - ((a1 & b1) | (a2 & b2))

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_dynamic_xnor(self, a, b):
        array = NorArray(rows=2, cols=1)
        assert array.xnor_column(a, b) == 1 - (a ^ b)

    def test_multi_column(self):
        array = NorArray(rows=2, cols=3)
        array.store([[1, 0, 1], [0, 1, 1]])
        out = array.aoi([1, 1])
        assert out == [0, 0, 0]
        out = array.aoi([0, 0])
        assert out == [1, 1, 1]

    def test_select_line_masks_rows(self):
        array = NorArray(rows=2, cols=1)
        array.store([[1], [1]])
        assert array.aoi([1, 1], select=[0, 0]) == [1]

    def test_shape_validation(self):
        array = NorArray(rows=2, cols=2)
        with pytest.raises(ValueError):
            array.store([[1, 0]])
        with pytest.raises(ValueError):
            array.aoi([1])


class TestLogicInMemoryAdder:
    """The in-array half/full adder of [103]."""

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_half_adder(self, a, b):
        adder = LogicInMemoryAdder()
        s, c = adder.half_add(a, b)
        assert s == a ^ b
        assert c == a & b

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    @pytest.mark.parametrize("cin", [0, 1])
    def test_full_adder(self, a, b, cin):
        adder = LogicInMemoryAdder()
        s, cout = adder.full_add(a, b, cin)
        total = a + b + cin
        assert s == total % 2
        assert cout == total // 2

    @pytest.mark.parametrize("a,b", [(5, 3), (7, 7), (0, 15), (9, 6)])
    def test_word_addition(self, a, b):
        adder = LogicInMemoryAdder()
        a_bits = [(a >> i) & 1 for i in range(4)]
        b_bits = [(b >> i) & 1 for i in range(4)]
        result = adder.add_words(a_bits, b_bits)
        assert sum(bit << i for i, bit in enumerate(result)) == a + b

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogicInMemoryAdder().add_words([1, 0], [1])
