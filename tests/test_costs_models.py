"""The cost-model layer: static bit-identity, value-aware pricing, Pareto.

The load-bearing test here is :class:`TestStaticPinned`: the exact charge
totals below were captured from the pre-refactor code (inline constants at
every call site) and the refactored :class:`StaticEnergyModel` must
reproduce every one of them bit-for-bit — the flag-off guarantee that the
cost-model layer is a pure re-routing, not a re-modeling.
"""

import numpy as np
import pytest

from repro.core.cim_core import CIMCore, CIMCoreParams
from repro.core.comparison import ArchitectureComparator, WorkloadSpec
from repro.core.vonneumann import VonNeumannMachine
from repro.costs import (
    EnergyModelSpec,
    StaticEnergyModel,
    ValueAwareEnergyModel,
    active_model,
    active_spec,
    knee_point,
    model_from_spec,
    pareto_front,
    parameter_sensitivity,
    use_model,
)
from repro.core.metrics import CostAccumulator
from repro.periphery.adc import ADC, ADCConfig
from repro.periphery.dac import DAC
from repro.pipeline.interconnect import Interconnect
from repro.utils import telemetry

# Captured from the pre-refactor code (commit e282ec3) by running the
# exact operation sequence in TestStaticPinned; every float is verbatim.
PINNED = {
    "cim_core": {
        "adc": {"energy": 3.1231999999999996e-11, "latency": 3.90625e-09},
        "array": {"energy": 7.023159877855806e-13, "latency": 8e-09},
        "dac": {"energy": 2.4399999999999997e-13, "latency": 3.90625e-09},
        "decoder": {"energy": 3e-14, "latency": 1.5000000000000002e-09},
        "driver": {"energy": 4.3000000000000004e-13, "latency": 4e-09},
        "programming": {"energy": 2.8799999999999996e-09, "latency": 3e-07},
        "sense_amp": {
            "energy": 9.600000000000001e-14,
            "latency": 3.0000000000000004e-09,
        },
    },
    "cim_core_ir": {
        "adc": {"energy": 5.62176e-11, "latency": 2.34375e-09},
        "array": {
            "energy": 1.6444264967807333e-13,
            "latency": 3.0000000000000004e-09,
        },
        "dac": {"energy": 1.098e-13, "latency": 2.34375e-09},
        "driver": {"energy": 1.8e-13, "latency": 1.5000000000000002e-09},
        "programming": {"energy": 1.44e-09, "latency": 1e-07},
    },
    "cim_p": {"energy": 2.5607679999999965e-09, "latency": 1.239999999999999e-07},
    "interconnect": {
        "interconnect": {
            "data_moved": 422.0,
            "energy": 4.22e-10,
            "latency": 8.22e-09,
        }
    },
    "von_neumann": {
        "compute": {
            "energy": 3.9999999999999996e-10,
            "latency": 1.2500000000000001e-08,
        },
        "data_movement": {
            "data_moved": 370.0,
            "energy": 2.96e-08,
            "latency": 1.4453124999999997e-08,
        },
    },
}


def _assert_matches(costs: CostAccumulator, pinned: dict) -> None:
    got = costs.as_dict()
    assert set(got) == set(pinned)
    for category, expected in pinned.items():
        for key, value in expected.items():
            assert got[category][key] == value, (
                f"{category}.{key}: {got[category][key]!r} != {value!r}"
            )


@pytest.fixture(scope="module")
def pinned_run():
    """Replays the exact capture sequence (one shared ``rng(7)`` stream —
    the data-dependent array/driver charges depend on the draw order)."""
    out = {}
    core = CIMCore(
        CIMCoreParams(rows=16, logical_cols=8, adc_bits=6),
        rng=np.random.default_rng(99),
    )
    rng = np.random.default_rng(7)
    core.program_weights(rng.uniform(-1.0, 1.0, size=(16, 8)))
    core.vmm_batch(rng.uniform(0.0, 1.0, size=(5, 16)), noisy=False)
    core.write_bit_row(
        0, (rng.uniform(size=core.array.cols) > 0.5).astype(int)
    )
    core.write_bit_row(
        1, (rng.uniform(size=core.array.cols) > 0.5).astype(int)
    )
    core.scouting_or([0, 1])
    core.scouting_and([0, 1])
    core.scouting_xor([0, 1])
    out["cim_core"] = core.costs

    core2 = CIMCore(
        CIMCoreParams(rows=12, logical_cols=6, wire_resistance=0.5),
        rng=np.random.default_rng(3),
    )
    core2.program_weights(rng.uniform(-1.0, 1.0, size=(12, 6)))
    core2.vmm_batch(rng.uniform(0.0, 1.0, size=(3, 12)), noisy=False)
    out["cim_core_ir"] = core2.costs

    vm = VonNeumannMachine()
    vm.run_workload(
        rng.uniform(0.0, 1.0, size=(4, 10)),
        rng.uniform(-1.0, 1.0, size=(10, 5)),
        weights_resident=False,
    )
    vm.run_workload(
        rng.uniform(0.0, 1.0, size=(4, 10)),
        rng.uniform(-1.0, 1.0, size=(10, 5)),
        weights_resident=True,
    )
    out["von_neumann"] = vm.costs

    link = Interconnect()
    link.transfer(100)
    link.transfer(37, hops=3)
    out["interconnect"] = link.costs
    return out


class TestStaticPinned:
    """Flag off == pre-refactor telemetry, bit for bit."""

    def test_cim_core_charges(self, pinned_run):
        _assert_matches(pinned_run["cim_core"], PINNED["cim_core"])

    def test_ir_drop_path_charges(self, pinned_run):
        _assert_matches(pinned_run["cim_core_ir"], PINNED["cim_core_ir"])

    def test_von_neumann_charges(self, pinned_run):
        _assert_matches(pinned_run["von_neumann"], PINNED["von_neumann"])

    def test_interconnect_charges(self, pinned_run):
        _assert_matches(pinned_run["interconnect"], PINNED["interconnect"])

    def test_comparator_cim_p(self):
        comp = ArchitectureComparator(
            WorkloadSpec(matrix_rows=16, matrix_cols=8, batch=3), rng=0
        )
        m = comp.measure_cim_p()
        assert m.energy == PINNED["cim_p"]["energy"]
        assert m.latency == PINNED["cim_p"]["latency"]


class TestSpecParsing:
    def test_names(self):
        assert EnergyModelSpec.parse("static").name == "static"
        assert EnergyModelSpec.parse("value_aware").name == "value_aware"
        spec = EnergyModelSpec.parse("value_aware_statistical")
        assert spec.name == "value_aware_statistical"
        assert spec.statistical

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown energy model"):
            EnergyModelSpec.parse("quantum")

    def test_dict_roundtrip(self):
        spec = EnergyModelSpec(kind="value_aware", dac_static_fraction=0.5)
        assert EnergyModelSpec.parse(spec.to_dict()) == spec

    def test_dict_with_name_and_overrides(self):
        spec = EnergyModelSpec.parse(
            {"name": "value_aware", "adc_static_fraction": 0.1}
        )
        assert spec.kind == "value_aware"
        assert spec.adc_static_fraction == 0.1

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError):
            EnergyModelSpec(dac_static_fraction=1.5)

    def test_model_from_spec_cached(self):
        assert model_from_spec("static") is model_from_spec("static")
        assert isinstance(model_from_spec("static"), StaticEnergyModel)
        assert isinstance(
            model_from_spec("value_aware"), ValueAwareEnergyModel
        )

    def test_value_aware_model_rejects_static_spec(self):
        with pytest.raises(ValueError, match="value_aware spec"):
            ValueAwareEnergyModel(EnergyModelSpec())


class TestModelSelection:
    def test_default_is_static(self):
        assert active_spec().name == "static"
        assert isinstance(active_model(), StaticEnergyModel)
        assert not active_model().needs_values

    def test_use_model_scopes_and_restores(self):
        with use_model("value_aware") as model:
            assert isinstance(model, ValueAwareEnergyModel)
            assert active_model() is model
            assert active_model().needs_values
        assert isinstance(active_model(), StaticEnergyModel)

    def test_use_model_nests(self):
        with use_model("value_aware"):
            with use_model("static"):
                assert active_spec().name == "static"
            assert active_spec().name == "value_aware"


class TestValueAwarePricing:
    """Physics-shaped properties of the data-dependent terms."""

    exact = ValueAwareEnergyModel(EnergyModelSpec(kind="value_aware"))
    stat = ValueAwareEnergyModel(
        EnergyModelSpec(kind="value_aware", statistical=True)
    )
    static = StaticEnergyModel()
    dac = DAC()
    adc = ADC(ADCConfig(bits=8))

    def test_dac_energy_tracks_magnitude(self):
        lo = self.exact._dac_energy(
            self.dac, 8, 1, np.full(8, 0.1), 1.0
        )
        hi = self.exact._dac_energy(
            self.dac, 8, 1, np.full(8, 0.9), 1.0
        )
        full = self.static._dac_energy(self.dac, 8, 1, None, None)
        assert lo < hi <= full
        # The static fraction floors the bill even at zero drive.
        zero = self.exact._dac_energy(self.dac, 8, 1, np.zeros(8), 1.0)
        assert zero == pytest.approx(0.3 * full)

    def test_full_scale_drive_equals_static(self):
        full_drive = self.exact._dac_energy(
            self.dac, 8, 1, np.full(8, 1.0), 1.0
        )
        assert full_drive == pytest.approx(
            self.static._dac_energy(self.dac, 8, 1, None, None)
        )

    def test_adc_energy_counts_code_bits(self):
        codes = np.array([0, 1, 3, 255])
        base = self.static._adc_energy(self.adc, 4, 1, None)
        got = self.exact._adc_energy(self.adc, 4, 1, codes)
        # popcounts: 0, 1, 2, 8 -> dyn = 11/8 conversions' worth.
        beta = 0.4
        expected = (
            self.adc.energy_per_conversion * (beta * 4 + (1 - beta) * 11 / 8)
        )
        assert got == pytest.approx(expected)
        assert got < base

    def test_adc_statistical_is_first_moment(self):
        codes = np.array([0, 64, 128, 255])
        duty = float(np.mean(codes)) / 255
        beta = 0.4
        expected = self.adc.energy_per_conversion * (
            beta * 4 + (1 - beta) * 4 * duty
        )
        got = self.stat._adc_energy(self.adc, 4, 1, codes)
        assert got == pytest.approx(expected)

    def test_programming_tracks_conductance_state(self):
        lo = self.exact._programming_energy(
            4, 1, np.full(4, 1e-6), 1e-6, 1e-4
        )
        hi = self.exact._programming_energy(
            4, 1, np.full(4, 1e-4), 1e-6, 1e-4
        )
        base = self.static._programming_energy(4, 1, None, None, None)
        assert lo < hi
        assert hi == pytest.approx(base)
        # Missing device bounds fall back to the static bill.
        assert self.exact._programming_energy(
            4, 1, np.full(4, 1e-5), None, None
        ) == base

    def test_wire_energy_tracks_density(self):
        dense = self.exact._wire_energy(1e-9, np.ones(16))
        sparse = self.exact._wire_energy(
            1e-9, np.array([1.0] + [0.0] * 15)
        )
        assert sparse < dense == pytest.approx(1e-9)
        # The activity floor keeps all-zero payloads from pricing free.
        assert self.exact._wire_energy(1e-9, np.zeros(16)) == pytest.approx(
            0.25e-9
        )

    def test_statistical_close_to_exact_on_uniform_data(self):
        rng = np.random.default_rng(5)
        voltages = rng.uniform(0.0, 1.0, size=256)
        exact = self.exact._dac_energy(self.dac, 256, 1, voltages, 1.0)
        stat = self.stat._dac_energy(self.dac, 256, 1, voltages, 1.0)
        static = self.static._dac_energy(self.dac, 256, 1, None, None)
        # Statistical is approximate (E[v]^2 != E[v^2]) but must stay in
        # the same regime: below static, within ~35% of exact.
        assert stat < static
        assert stat == pytest.approx(exact, rel=0.35)

    def test_value_aware_run_is_conservation_valid(self):
        with use_model("value_aware"), telemetry.scoped() as scope:
            core = CIMCore(
                CIMCoreParams(rows=16, logical_cols=8),
                rng=np.random.default_rng(0),
            )
            rng = np.random.default_rng(1)
            core.program_weights(rng.uniform(-1.0, 1.0, size=(16, 8)))
            core.vmm_batch(rng.uniform(0.0, 1.0, size=(4, 16)), noisy=False)
            report = telemetry.RunReport.from_counters(
                scope.snapshot(include_timers=False)["counters"],
                label="value_aware",
            )
        report.validate()
        assert report.total_energy > 0
        for category, cost in report.categories.items():
            assert cost["energy"] >= 0, category

    def test_value_aware_total_below_static_on_sub_full_scale_inputs(self):
        def run(spec):
            with use_model(spec):
                core = CIMCore(
                    CIMCoreParams(rows=16, logical_cols=8),
                    rng=np.random.default_rng(0),
                )
                rng = np.random.default_rng(1)
                core.program_weights(rng.uniform(-1.0, 1.0, size=(16, 8)))
                core.vmm_batch(
                    rng.uniform(0.0, 0.5, size=(4, 16)), noisy=False
                )
                return core.costs.total

        static = run("static")
        aware = run("value_aware")
        assert aware.energy < static.energy
        # Timing and data movement never depend on the pricing model.
        assert aware.latency == static.latency
        assert aware.data_moved == static.data_moved


ROWS = [
    {"accuracy": 0.9, "energy_per_sample": 2.0, "area_mm2": 1.0,
     "throughput": 10.0, "tiles": 4, "adc_bits": 8},
    {"accuracy": 0.8, "energy_per_sample": 1.0, "area_mm2": 0.5,
     "throughput": 10.0, "tiles": 4, "adc_bits": 6},
    {"accuracy": 0.5, "energy_per_sample": 3.0, "area_mm2": 2.0,
     "throughput": 5.0, "tiles": 8, "adc_bits": 8},  # dominated by row 0
    {"accuracy": 0.9, "energy_per_sample": 2.0, "area_mm2": 1.0,
     "throughput": 10.0, "tiles": 8, "adc_bits": 8},  # duplicate of row 0
]

OBJS = ("accuracy", "energy", "area", "throughput")


class TestPareto:
    def test_dominated_rows_removed(self):
        assert pareto_front(ROWS, OBJS) == [0, 1, 3]

    def test_duplicates_all_survive(self):
        front = pareto_front(ROWS, OBJS)
        assert 0 in front and 3 in front

    def test_single_objective(self):
        assert pareto_front(ROWS, ("accuracy",)) == [0, 3]

    def test_unknown_objective_raises(self):
        with pytest.raises(ValueError, match="unknown objective"):
            pareto_front(ROWS, ("accuracy", "latency"))

    def test_empty_objectives_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            pareto_front(ROWS, ())

    def test_missing_key_raises(self):
        with pytest.raises(ValueError, match="no finite"):
            pareto_front([{"accuracy": 1.0}], OBJS)

    def test_knee_is_on_front_and_deterministic(self):
        knee = knee_point(ROWS, OBJS)
        assert knee in pareto_front(ROWS, OBJS)
        assert knee == knee_point(ROWS, OBJS)

    def test_knee_prefers_balance(self):
        rows = [
            {"accuracy": 1.0, "energy_per_sample": 10.0},
            {"accuracy": 0.9, "energy_per_sample": 2.0},
            {"accuracy": 0.1, "energy_per_sample": 1.0},
        ]
        assert knee_point(rows, ("accuracy", "energy")) == 1

    def test_knee_empty_rows(self):
        assert knee_point([], OBJS) is None

    def test_sensitivity_shape_and_range(self):
        sens = parameter_sensitivity(ROWS, ("tiles", "adc_bits"), OBJS)
        assert set(sens) == {"tiles", "adc_bits"}
        for per_objective in sens.values():
            assert set(per_objective) == set(OBJS)
            for value in per_objective.values():
                assert 0.0 <= value <= 1.0

    def test_sensitivity_single_group_is_zero(self):
        sens = parameter_sensitivity(ROWS, ("missing_param",), OBJS)
        assert all(v == 0.0 for v in sens["missing_param"].values())

    def test_sensitivity_dominant_parameter(self):
        rows = [
            {"accuracy": 0.1, "energy_per_sample": 1.0, "knob": 0, "other": 0},
            {"accuracy": 0.9, "energy_per_sample": 1.0, "knob": 1, "other": 0},
            {"accuracy": 0.1, "energy_per_sample": 1.0, "knob": 0, "other": 1},
            {"accuracy": 0.9, "energy_per_sample": 1.0, "knob": 1, "other": 1},
        ]
        sens = parameter_sensitivity(
            rows, ("knob", "other"), ("accuracy",)
        )
        assert sens["knob"]["accuracy"] == pytest.approx(1.0)
        assert sens["other"]["accuracy"] == pytest.approx(0.0)

    def test_sensitivity_missing_key_raises_value_error(self):
        """Regression: rows missing an objective key leaked a bare
        ``KeyError`` out of parameter_sensitivity; it must raise the same
        descriptive ValueError as the front/knee scoring path."""
        rows = [
            {"accuracy": 0.9, "knob": 0},
            {"knob": 1},  # no 'accuracy'
        ]
        with pytest.raises(ValueError, match="no finite 'accuracy'"):
            parameter_sensitivity(rows, ("knob",), ("accuracy",))

    def test_sensitivity_non_finite_value_raises(self):
        rows = [
            {"accuracy": 0.9, "knob": 0},
            {"accuracy": float("nan"), "knob": 1},
        ]
        with pytest.raises(ValueError, match="no finite"):
            parameter_sensitivity(rows, ("knob",), ("accuracy",))

    def test_custom_objective_table(self):
        """Every entry point accepts a custom name -> (key, direction)
        table (the ECC advisor's coverage objective has no place in the
        pipeline's hardcoded set)."""
        table = {
            "coverage": ("coverage", "max"),
            "cost": ("dollars", "min"),
        }
        rows = [
            {"coverage": 0.99, "dollars": 10.0, "knob": 0},
            {"coverage": 0.90, "dollars": 1.0, "knob": 1},
            {"coverage": 0.50, "dollars": 20.0, "knob": 0},  # dominated
        ]
        names = ("coverage", "cost")
        front = pareto_front(rows, names, objectives=table)
        assert front == [0, 1]
        knee = knee_point(rows, names, objectives=table)
        assert knee in front
        sens = parameter_sensitivity(
            rows, ("knob",), names, objectives=table
        )
        assert set(sens["knob"]) == {"coverage", "cost"}

    def test_custom_table_unknown_name_lists_its_keys(self):
        table = {"coverage": ("coverage", "max")}
        with pytest.raises(ValueError, match="coverage"):
            pareto_front(
                [{"coverage": 1.0}], ("accuracy",), objectives=table
            )

    def test_custom_table_bad_direction_rejected(self):
        from repro.costs.pareto import resolve_objectives

        with pytest.raises(ValueError, match="invalid direction"):
            resolve_objectives(
                ("coverage",), {"coverage": ("coverage", "maximize")}
            )
