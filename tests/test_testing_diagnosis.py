"""Tests for March C* signature-based fault diagnosis ([39])."""

import pytest

from repro.testing.diagnosis import (
    SignatureDiagnoser,
    build_fault_dictionary,
    golden_signature,
)
from repro.testing.march import (
    FaultyBitMemory,
    MemoryFault,
    MemoryFaultKind,
    march_c_star,
)


class TestGoldenSignature:
    def test_matches_march_c_star_read_expectations(self):
        """Six reads, in order: r0, r1, r1, r0, r1, r0."""
        assert golden_signature() == (0, 1, 1, 0, 1, 0)

    def test_six_bits(self):
        assert len(golden_signature()) == march_c_star().reads_per_cell


class TestFaultDictionary:
    @pytest.fixture(scope="class")
    def dictionary(self):
        return build_fault_dictionary()

    def test_golden_not_in_dictionary(self, dictionary):
        assert golden_signature() not in dictionary

    def test_sa1_signature_unique(self, dictionary):
        """SA1 reads 1 everywhere: the all-ones signature is its own."""
        assert dictionary[(1, 1, 1, 1, 1, 1)] == {MemoryFaultKind.SA1}

    def test_read1_disturb_distinct_from_stuck(self, dictionary):
        """The double read of element 2 isolates read-1 disturbance: the
        first r1 passes, the second fails — a signature no stuck-at can
        produce."""
        sig = (0, 1, 0, 0, 1, 0)
        assert dictionary[sig] == {MemoryFaultKind.READ1_DISTURB}

    def test_sa0_class_ambiguity_is_faithful(self, dictionary):
        """SA0, TF-up and ADF-no-access all read 0 on every r1 — they are
        genuinely indistinguishable from the victim's reads alone."""
        all_zero = (0, 0, 0, 0, 0, 0)
        assert dictionary[all_zero] == {
            MemoryFaultKind.SA0,
            MemoryFaultKind.TF_UP,
            MemoryFaultKind.ADF_NO_ACCESS,
        }

    def test_every_mechanism_has_a_signature(self, dictionary):
        covered = set()
        for kinds in dictionary.values():
            covered |= kinds
        assert MemoryFaultKind.TF_DOWN in covered
        assert MemoryFaultKind.SA1 in covered
        assert MemoryFaultKind.READ1_DISTURB in covered


class TestDiagnoser:
    @pytest.fixture(scope="class")
    def diagnoser(self):
        return SignatureDiagnoser()

    def test_healthy_signature(self, diagnoser):
        diagnosis = diagnoser.diagnose(diagnoser.golden)
        assert diagnosis.healthy
        assert diagnosis.candidates == frozenset()

    @pytest.mark.parametrize(
        "kind,expect_unambiguous",
        [
            (MemoryFaultKind.SA1, True),
            (MemoryFaultKind.TF_DOWN, True),
            (MemoryFaultKind.READ1_DISTURB, True),
            (MemoryFaultKind.SA0, False),   # shares class with TF_UP/ADF
        ],
        ids=lambda v: v.value if isinstance(v, MemoryFaultKind) else str(v),
    )
    def test_end_to_end_diagnosis(self, diagnoser, kind, expect_unambiguous):
        memory = FaultyBitMemory(8)
        memory.inject(MemoryFault(kind, 5))
        verdicts = diagnoser.diagnose_memory(memory)
        assert 5 in verdicts
        diagnosis = verdicts[5]
        assert kind in diagnosis.candidates
        assert diagnosis.unambiguous == expect_unambiguous

    def test_clean_memory_no_verdicts(self, diagnoser):
        assert diagnoser.diagnose_memory(FaultyBitMemory(8)) == {}

    def test_signature_length_checked(self, diagnoser):
        with pytest.raises(ValueError):
            diagnoser.diagnose((0, 1))

    def test_unknown_signature_flagged_undiagnosed(self, diagnoser):
        weird = (1, 0, 1, 1, 0, 1)
        diagnosis = diagnoser.diagnose(weird)
        if not diagnosis.candidates:
            assert not diagnosis.diagnosed
