"""Tests for the fault injector."""

import numpy as np
import pytest

from repro.crossbar.array import CrossbarArray, CrossbarConfig
from repro.faults.defects import Defect, DefectType
from repro.faults.injection import FaultInjector, FaultMap, yield_to_fault_rate
from repro.faults.models import Fault, FaultType


def _array(seed=0, n=32):
    array = CrossbarArray(CrossbarConfig(rows=n, cols=n), rng=seed)
    array.program(np.full((n, n), 5e-5))
    return array


class TestYieldConversion:
    def test_complement(self):
        assert yield_to_fault_rate(0.8) == pytest.approx(0.2)
        assert yield_to_fault_rate(1.0) == 0.0

    def test_bounds(self):
        with pytest.raises(ValueError):
            yield_to_fault_rate(1.1)


class TestFaultMap:
    def test_distinct_cells(self):
        fm = FaultMap(shape=(4, 4))
        fm.add(Fault(FaultType.STUCK_AT_0, 0, 0))
        fm.add(Fault(FaultType.STUCK_AT_1, 0, 0))
        fm.add(Fault(FaultType.STUCK_AT_0, 1, 1))
        assert fm.count == 3
        assert len(fm.cells()) == 2
        assert fm.fault_rate == pytest.approx(2 / 16)

    def test_mask(self):
        fm = FaultMap(shape=(2, 2))
        fm.add(Fault(FaultType.STUCK_AT_0, 1, 0))
        mask = fm.mask()
        assert mask[1, 0] and mask.sum() == 1

    def test_by_type_grouping(self):
        fm = FaultMap(shape=(4, 4))
        fm.add(Fault(FaultType.STUCK_AT_0, 0, 0))
        fm.add(Fault(FaultType.STUCK_AT_1, 1, 1))
        groups = fm.by_type()
        assert len(groups[FaultType.STUCK_AT_0]) == 1

    def test_out_of_bounds_rejected(self):
        fm = FaultMap(shape=(2, 2))
        with pytest.raises(ValueError):
            fm.add(Fault(FaultType.STUCK_AT_0, 2, 0))


class TestInjection:
    def test_sa0_pins_gmin(self):
        array = _array()
        injector = FaultInjector(array, rng=1)
        injector.inject_fault(Fault(FaultType.STUCK_AT_0, 3, 4))
        assert array.conductances()[3, 4] == array.config.levels.g_min

    def test_sa1_pins_gmax(self):
        array = _array()
        injector = FaultInjector(array, rng=1)
        injector.inject_fault(Fault(FaultType.STUCK_AT_1, 3, 4))
        assert array.conductances()[3, 4] == array.config.levels.g_max

    def test_rate_population(self):
        array = _array(n=64)
        injector = FaultInjector(array, rng=2)
        fm = injector.inject_stuck_at(0.1)
        assert fm.fault_rate == pytest.approx(0.1, abs=0.03)

    def test_yield_population(self):
        array = _array(n=64)
        injector = FaultInjector(array, rng=3)
        fm = injector.inject_for_yield(0.8)
        assert fm.fault_rate == pytest.approx(0.2, abs=0.04)

    def test_sa1_fraction_split(self):
        array = _array(n=64)
        injector = FaultInjector(array, rng=4)
        fm = injector.inject_stuck_at(0.2, sa1_fraction=1.0)
        groups = fm.by_type()
        assert FaultType.STUCK_AT_0 not in groups
        assert FaultType.STUCK_AT_1 in groups

    def test_exact_count(self):
        array = _array()
        injector = FaultInjector(array, rng=5)
        fm = injector.inject_exact_count(17)
        assert len(fm.cells()) == 17
        assert array.fault_count() == 17

    def test_exact_count_bounds(self):
        array = _array(n=4)
        injector = FaultInjector(array, rng=5)
        with pytest.raises(ValueError):
            injector.inject_exact_count(17)

    def test_defect_injection_expands_lines(self):
        array = _array(n=8)
        injector = FaultInjector(array, rng=6)
        injector.inject_defects([Defect(DefectType.BROKEN_WORDLINE, 2, -1)])
        assert array.fault_count() == 8
        assert np.all(
            array.conductances()[2] == array.config.levels.g_max
        )

    def test_fabrication_variation_shifts_but_not_sticks(self):
        array = _array()
        injector = FaultInjector(array, rng=7)
        g0 = array.conductances()[1, 1]
        injector.inject_fault(Fault(FaultType.FABRICATION_VARIATION, 1, 1))
        assert array.conductances()[1, 1] != pytest.approx(g0)
        assert array.fault_count() == 0  # soft fault, cell not pinned
