"""Tests for the binary neural network on FeRFET hardware."""

import numpy as np
import pytest

from repro.apps.bnn import BinaryMLP, FeRFETBinaryLayer, deploy_first_layer
from repro.apps.datasets import binary_patterns


@pytest.fixture(scope="module")
def trained_bnn():
    x, y = binary_patterns(n_samples=200, n_features=24, n_classes=2, rng=0)
    model = BinaryMLP([24, 12, 2], rng=1)
    model.train(x[:150], y[:150], epochs=20, rng=2)
    return model, x, y


class TestBinaryMLP:
    def test_weights_are_binary(self, trained_bnn):
        model, _, _ = trained_bnn
        for w in model.binary_weights():
            assert set(np.unique(w)).issubset({-1, 1})

    def test_training_learns_patterns(self, trained_bnn):
        model, x, y = trained_bnn
        assert model.accuracy(x[150:], y[150:]) > 0.8

    def test_hidden_activations_binary(self, trained_bnn):
        model, x, _ = trained_bnn
        h = x[:5].astype(float)
        z = h @ np.where(model.shadow[0] >= 0, 1, -1)
        act = np.where(z >= 0, 1.0, -1.0)
        assert set(np.unique(act)).issubset({-1.0, 1.0})

    def test_layer_validation(self):
        with pytest.raises(ValueError):
            BinaryMLP([8])


class TestHardwareDeployment:
    def test_first_layer_bit_exact(self, trained_bnn):
        model, x, _ = trained_bnn
        layer = deploy_first_layer(model)
        for row in x[:5]:
            assert layer.matches_reference(row)

    def test_forward_with_activation(self, trained_bnn):
        model, x, _ = trained_bnn
        layer = deploy_first_layer(model)
        out = layer.forward(x[0], activate=True)
        assert set(np.unique(out)).issubset({-1, 1})

    def test_hw_and_sw_classify_identically_through_layer(self, trained_bnn):
        """Because the FeRFET path is digital, the deployed layer output
        equals the software layer output exactly — the contrast with
        analog memristor CIM the paper draws in Section V-D."""
        model, x, _ = trained_bnn
        layer = FeRFETBinaryLayer(model.shadow[0])
        w = np.where(model.shadow[0] >= 0, 1, -1)
        for row in x[:5]:
            hw = layer.forward(row, activate=False)
            sw = row.astype(int) @ w
            assert np.array_equal(hw, sw)
