"""Tests for the CIM core (Fig 4b): analog VMM and scouting logic."""

import numpy as np
import pytest

from repro.core.cim_core import CIMCore, CIMCoreParams
from repro.devices.variability import VariabilityStack


@pytest.fixture
def core():
    return CIMCore(CIMCoreParams(rows=32, logical_cols=16), rng=0)


@pytest.fixture
def programmed_core(core, rng):
    w = rng.uniform(-1, 1, (32, 16))
    core.program_weights(w)
    return core, w


class TestVMM:
    def test_requires_programming_first(self, core):
        with pytest.raises(RuntimeError, match="program_weights"):
            core.vmm(np.zeros(32))

    def test_accuracy_within_adc_resolution(self, programmed_core, rng):
        core, w = programmed_core
        x = rng.uniform(0, 1, 32)
        y = core.vmm(x, noisy=False)
        reference = core.vmm_reference(x, w)
        assert np.max(np.abs(y - reference)) < 0.15
        assert np.corrcoef(y, reference)[0, 1] > 0.999

    def test_higher_adc_resolution_improves_accuracy(self, rng):
        w = rng.uniform(-1, 1, (32, 16))
        x = rng.uniform(0, 1, 32)
        errors = {}
        for bits in (4, 8, 12):
            core = CIMCore(
                CIMCoreParams(rows=32, logical_cols=16, adc_bits=bits), rng=1
            )
            core.program_weights(w)
            y = core.vmm(x, noisy=False)
            errors[bits] = np.max(np.abs(y - x @ w))
        assert errors[12] < errors[8] < errors[4]

    def test_weight_shape_validated(self, core):
        with pytest.raises(ValueError, match="shape"):
            core.program_weights(np.zeros((4, 4)))

    def test_input_shape_validated(self, programmed_core):
        core, _ = programmed_core
        with pytest.raises(ValueError):
            core.vmm(np.zeros(31))

    def test_costs_accumulate_per_category(self, programmed_core, rng):
        core, _ = programmed_core
        core.vmm(rng.uniform(0, 1, 32))
        categories = set(core.costs.by_category)
        assert {"programming", "dac", "array", "adc"}.issubset(categories)

    def test_adc_energy_dominates_analog_path(self, programmed_core, rng):
        """Fig 5's power story shows up in the per-op accounting too."""
        core, _ = programmed_core
        for _ in range(10):
            core.vmm(rng.uniform(0, 1, 32))
        adc = core.costs.by_category["adc"].energy
        dac = core.costs.by_category["dac"].energy
        array = core.costs.by_category["array"].energy
        assert adc > dac + array


class TestScoutingLogic:
    """CIM-P bulk bitwise operations ([20], [21])."""

    @pytest.fixture
    def logic_core(self):
        core = CIMCore(CIMCoreParams(rows=8, logical_cols=8), rng=3)
        return core

    def test_or_and_xor_match_numpy(self, logic_core, rng):
        a = rng.integers(0, 2, logic_core.array.cols)
        b = rng.integers(0, 2, logic_core.array.cols)
        logic_core.write_bit_row(0, a)
        logic_core.write_bit_row(1, b)
        assert np.array_equal(logic_core.scouting_or([0, 1]), a | b)
        assert np.array_equal(logic_core.scouting_and([0, 1]), a & b)
        assert np.array_equal(logic_core.scouting_xor([0, 1]), a ^ b)

    def test_three_way_or_and(self, logic_core, rng):
        rows_bits = [rng.integers(0, 2, logic_core.array.cols) for _ in range(3)]
        for i, bits in enumerate(rows_bits):
            logic_core.write_bit_row(i, bits)
        expected_or = rows_bits[0] | rows_bits[1] | rows_bits[2]
        expected_and = rows_bits[0] & rows_bits[1] & rows_bits[2]
        assert np.array_equal(logic_core.scouting_or([0, 1, 2]), expected_or)
        assert np.array_equal(logic_core.scouting_and([0, 1, 2]), expected_and)

    def test_xor_arity_enforced(self, logic_core):
        with pytest.raises(ValueError):
            logic_core.scouting_xor([0, 1, 2])

    def test_or_arity_enforced(self, logic_core):
        with pytest.raises(ValueError):
            logic_core.scouting_or([0])


class TestIRDropOption:
    def test_wire_resistance_degrades_accuracy(self, rng):
        """The circuit-accurate mode quantifies what ideal wires hide."""
        w = rng.uniform(-1, 1, (32, 16))
        x = rng.uniform(0, 1, 32)
        ideal = CIMCore(CIMCoreParams(rows=32, logical_cols=16), rng=11)
        ideal.program_weights(w)
        parasitic = CIMCore(
            CIMCoreParams(rows=32, logical_cols=16, wire_resistance=5.0),
            rng=11,
        )
        parasitic.program_weights(w)
        err_ideal = np.abs(ideal.vmm(x, noisy=False) - x @ w).max()
        err_parasitic = np.abs(parasitic.vmm(x, noisy=False) - x @ w).max()
        assert err_parasitic > err_ideal

    def test_zero_wire_resistance_is_ideal_path(self, rng):
        core = CIMCore(CIMCoreParams(rows=16, logical_cols=8), rng=12)
        assert core._ir_solver is None

    def test_negative_wire_resistance_rejected(self):
        with pytest.raises(ValueError):
            CIMCoreParams(wire_resistance=-1.0)


class TestVariabilityImpact:
    def test_noisy_core_less_accurate(self, rng):
        w = rng.uniform(-1, 1, (32, 16))
        x = rng.uniform(0, 1, 32)
        clean = CIMCore(CIMCoreParams(rows=32, logical_cols=16), rng=5)
        clean.program_weights(w)
        noisy = CIMCore(
            CIMCoreParams(rows=32, logical_cols=16),
            variability=VariabilityStack.typical(),
            rng=5,
        )
        noisy.program_weights(w)
        err_clean = np.abs(clean.vmm(x, noisy=False) - x @ w).max()
        errs = [
            np.abs(noisy.vmm(x, noisy=True) - x @ w).max() for _ in range(5)
        ]
        assert np.mean(errs) > err_clean


class TestWriteBitRow:
    """Regression suite for the write_bit_row accounting fix: the write
    must be charged as programming cost and must not disturb other rows."""

    @pytest.fixture
    def logic_core(self):
        return CIMCore(CIMCoreParams(rows=8, logical_cols=8), rng=3)

    def test_charges_programming_cost(self, logic_core):
        before = logic_core.costs.by_category.get("programming")
        before_energy = before.energy if before else 0.0
        logic_core.write_bit_row(0, np.ones(logic_core.array.cols, dtype=int))
        after = logic_core.costs.by_category["programming"]
        assert after.energy > before_energy
        assert after.latency > 0

    def test_untouched_rows_bit_identical(self, logic_core):
        rng = np.random.default_rng(0)
        for r in range(4):
            logic_core.write_bit_row(r, rng.integers(0, 2, logic_core.array.cols))
        g_before = logic_core.array.conductances()
        logic_core.write_bit_row(5, rng.integers(0, 2, logic_core.array.cols))
        g_after = logic_core.array.conductances()
        untouched = [r for r in range(logic_core.array.rows) if r != 5]
        assert np.array_equal(g_before[untouched], g_after[untouched])

    def test_write_count_only_on_written_row(self, logic_core):
        logic_core.write_bit_row(2, np.ones(logic_core.array.cols, dtype=int))
        counts = logic_core.array.write_counts()
        assert counts[2].min() >= 1
        assert counts[[0, 1, 3]].max() == 0

    def test_scouting_charges_driver_and_decoder(self, logic_core):
        rng = np.random.default_rng(1)
        logic_core.write_bit_row(0, rng.integers(0, 2, logic_core.array.cols))
        logic_core.write_bit_row(1, rng.integers(0, 2, logic_core.array.cols))
        logic_core.scouting_or([0, 1])
        categories = logic_core.costs.by_category
        assert categories["driver"].energy > 0
        assert categories["decoder"].energy > 0

    def test_vmm_batch_charges_driver(self):
        core = CIMCore(CIMCoreParams(rows=16, logical_cols=8), rng=0)
        rng = np.random.default_rng(0)
        core.program_weights(rng.uniform(-1, 1, (16, 8)))
        core.vmm_batch(rng.uniform(0, 1, (4, 16)), noisy=False)
        assert core.costs.by_category["driver"].energy > 0
