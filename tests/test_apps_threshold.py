"""Tests for threshold logic on CIM."""

import numpy as np
import pytest

from repro.apps.threshold_logic import CrossbarThresholdGate, ThresholdGate


class TestSoftwareGates:
    def test_and_gate(self):
        gate = ThresholdGate.and_gate(3)
        assert gate.evaluate([1, 1, 1]) == 1
        assert gate.evaluate([1, 1, 0]) == 0

    def test_or_gate(self):
        gate = ThresholdGate.or_gate(3)
        assert gate.evaluate([0, 0, 0]) == 0
        assert gate.evaluate([0, 1, 0]) == 1

    def test_majority_gate(self):
        gate = ThresholdGate.majority_gate(5)
        assert gate.evaluate([1, 1, 1, 0, 0]) == 1
        assert gate.evaluate([1, 1, 0, 0, 0]) == 0

    def test_majority_needs_odd(self):
        with pytest.raises(ValueError):
            ThresholdGate.majority_gate(4)

    def test_at_least_k(self):
        gate = ThresholdGate.at_least_k(4, 2)
        assert gate.evaluate([1, 0, 1, 0]) == 1
        assert gate.evaluate([1, 0, 0, 0]) == 0

    def test_signed_weights(self):
        gate = ThresholdGate(np.array([1.0, -1.0]), 0.5)
        assert gate.evaluate([1, 0]) == 1
        assert gate.evaluate([1, 1]) == 0
        assert gate.evaluate([0, 1]) == 0

    def test_input_shape(self):
        with pytest.raises(ValueError):
            ThresholdGate.and_gate(3).evaluate([1, 1])


class TestCrossbarGates:
    @pytest.mark.parametrize(
        "gate_factory",
        [
            lambda: ThresholdGate.and_gate(4),
            lambda: ThresholdGate.or_gate(4),
            lambda: ThresholdGate.majority_gate(5),
            lambda: ThresholdGate.at_least_k(6, 3),
        ],
        ids=["and4", "or4", "maj5", "atleast3of6"],
    )
    def test_crossbar_agrees_with_reference(self, gate_factory):
        gate = gate_factory()
        cim_gate = CrossbarThresholdGate(gate, rng=0)
        assert cim_gate.agrees_with_reference()

    def test_signed_weight_gate_on_crossbar(self):
        gate = ThresholdGate(np.array([1.0, -1.0, 1.0]), 1.5)
        cim_gate = CrossbarThresholdGate(gate, rng=1)
        assert cim_gate.agrees_with_reference()

    def test_binary_input_enforced(self):
        gate = CrossbarThresholdGate(ThresholdGate.and_gate(2), rng=2)
        with pytest.raises(ValueError, match="binary"):
            gate.evaluate([0.5, 1])
