"""Tests for the RFET compact model."""

import pytest

from repro.devices.rfet import RFET, Polarity, RFETParams


class TestPolarityProgramming:
    def test_positive_program_gate_selects_n(self):
        dev = RFET(polarity=Polarity.P_TYPE)
        dev.apply_program_gate(+0.5)
        assert dev.polarity is Polarity.N_TYPE

    def test_negative_program_gate_selects_p(self):
        dev = RFET(polarity=Polarity.N_TYPE)
        dev.apply_program_gate(-0.5)
        assert dev.polarity is Polarity.P_TYPE

    def test_weak_program_voltage_keeps_polarity(self):
        dev = RFET(polarity=Polarity.N_TYPE)
        dev.apply_program_gate(0.1)
        assert dev.polarity is Polarity.N_TYPE

    def test_volatile_reconfiguration_on_the_fly(self):
        """The RFET selling point: same device, both polarities."""
        p = RFETParams()
        dev = RFET(p)
        dev.apply_program_gate(+1.0)
        n_current = dev.drain_current(p.operating_voltage)
        dev.apply_program_gate(-1.0)
        p_current = dev.drain_current(-p.operating_voltage)
        assert n_current > 1e-7
        assert p_current > 1e-7


class TestBranchCurrents:
    def test_n_branch_conducts_on_high_gate(self):
        p = RFETParams()
        dev = RFET(p, polarity=Polarity.N_TYPE)
        assert dev.is_conducting(p.operating_voltage)
        assert not dev.is_conducting(-p.operating_voltage)

    def test_p_branch_conducts_on_low_gate(self):
        p = RFETParams()
        dev = RFET(p, polarity=Polarity.P_TYPE)
        assert dev.is_conducting(-p.operating_voltage)
        assert not dev.is_conducting(p.operating_voltage)

    def test_symmetric_design(self):
        """[94]: symmetric n/p characteristics by design."""
        p = RFETParams()
        n = RFET(p, Polarity.N_TYPE).drain_current(p.operating_voltage)
        pp = RFET(p, Polarity.P_TYPE).drain_current(-p.operating_voltage)
        assert n == pytest.approx(pp, rel=1e-9)


class TestWiredAnd:
    def test_wired_and_requires_all_gates(self):
        """[102]: multiple independent gates give intrinsic wired-AND."""
        p = RFETParams(n_control_gates=2)
        dev = RFET(p, Polarity.N_TYPE)
        v = p.operating_voltage
        assert dev.is_conducting(v, extra_controls=[v])
        assert not dev.is_conducting(v, extra_controls=[-v])
        assert not dev.is_conducting(-v, extra_controls=[v])

    def test_wrong_extra_gate_count_rejected(self):
        dev = RFET(RFETParams(n_control_gates=3))
        with pytest.raises(ValueError, match="extra control"):
            dev.drain_current(0.8, extra_controls=[0.8])


class TestParamsValidation:
    def test_vth_p_must_be_negative(self):
        with pytest.raises(ValueError, match="vth_p"):
            RFETParams(vth_p=0.2)

    def test_gate_count_positive(self):
        with pytest.raises(ValueError, match="n_control_gates"):
            RFETParams(n_control_gates=0)
