"""Tests for crossbar sparse coding."""

import numpy as np
import pytest

from repro.apps.datasets import sparse_signals
from repro.apps.sparse_coding import CrossbarSparseCoder, ista_reference


@pytest.fixture(scope="module")
def problem():
    return sparse_signals(
        n_samples=3, n_atoms=48, signal_dim=24, sparsity=3, noise=0.005, rng=0
    )


class TestReferenceIsta:
    def test_recovers_sparse_code(self, problem):
        d, codes, signals = problem
        a = ista_reference(d, signals[0], lam=0.05, iterations=200)
        recall, precision = CrossbarSparseCoder.support_recovery(a, codes[0])
        assert recall == 1.0
        assert precision >= 0.5

    def test_nonnegative(self, problem):
        d, _, signals = problem
        a = ista_reference(d, signals[0])
        assert np.all(a >= 0)

    def test_validation(self, problem):
        d, _, signals = problem
        with pytest.raises(ValueError):
            ista_reference(d, signals[0], lam=0)


class TestCrossbarCoder:
    def test_matches_reference(self, problem):
        d, codes, signals = problem
        coder = CrossbarSparseCoder(d, rng=1)
        a_cb = coder.encode(signals[0], iterations=150)
        a_ref = ista_reference(d, signals[0], iterations=150)
        assert np.allclose(a_cb, a_ref, atol=0.05)

    def test_reconstruction_error_small(self, problem):
        d, _, signals = problem
        coder = CrossbarSparseCoder(d, rng=2)
        a = coder.encode(signals[1], iterations=150)
        assert coder.reconstruction_error(signals[1], a) < 0.1

    def test_support_recovery(self, problem):
        d, codes, signals = problem
        coder = CrossbarSparseCoder(d, rng=3)
        a = coder.encode(signals[2], iterations=150)
        recall, _ = CrossbarSparseCoder.support_recovery(a, codes[2])
        assert recall == 1.0

    def test_signal_shape_validated(self, problem):
        d, _, _ = problem
        coder = CrossbarSparseCoder(d, rng=4)
        with pytest.raises(ValueError):
            coder.encode(np.zeros(10))

    def test_weights_stationary_on_crossbar(self, problem):
        """The dictionary is programmed once; iterations only read."""
        d, _, signals = problem
        coder = CrossbarSparseCoder(d, rng=5)
        writes_before = coder.core.array.write_operations
        coder.encode(signals[0], iterations=30)
        assert coder.core.array.write_operations == writes_before


class TestSupportRecoveryMetric:
    def test_perfect(self):
        est = np.array([0.0, 1.0, 0.0, 0.8])
        truth = np.array([0.0, 1.0, 0.0, 0.9])
        assert CrossbarSparseCoder.support_recovery(est, truth) == (1.0, 1.0)

    def test_empty_estimate(self):
        est = np.zeros(4)
        truth = np.array([0.0, 1.0, 0.0, 0.0])
        recall, precision = CrossbarSparseCoder.support_recovery(est, truth)
        assert recall == 0.0
        assert precision == 1.0
