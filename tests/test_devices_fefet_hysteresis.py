"""Tests for the ferroelectric P-V hysteresis loop (Fig 9)."""

import numpy as np
import pytest

from repro.devices.fefet import FeFET, FeFETParams


class TestPVLoop:
    @pytest.fixture
    def loop(self):
        return FeFET(polarization=-1.0).polarization_hysteresis()

    def test_loop_is_hysteretic(self, loop):
        assert loop.is_hysteretic()

    def test_remanence_near_saturation(self, loop):
        """After saturating pulses the state at V = 0 stays polarized —
        the non-volatile storage Fig 9 is about."""
        assert loop.remanent_polarization() > 0.7

    def test_polarization_bounded(self, loop):
        assert np.all(np.abs(loop.polarization) <= 1.0)

    def test_saturates_at_extremes(self, loop):
        at_max = loop.polarization[np.argmax(loop.voltage)]
        at_min = loop.polarization[np.argmin(loop.voltage)]
        assert at_max > 0.9
        assert at_min < -0.9

    def test_coercive_switching_location(self):
        """The polarization sign flip happens beyond the coercive voltage,
        never inside the sub-coercive window."""
        dev = FeFET(polarization=-1.0)
        loop = dev.polarization_hysteresis(points_per_branch=100)
        vc = dev.params.coercive_voltage
        sub_coercive = np.abs(loop.voltage) < vc
        # Within the sub-coercive window the state cannot move, so any
        # consecutive pair of sub-coercive samples has equal polarization.
        p = loop.polarization
        for i in range(1, len(p)):
            if sub_coercive[i] and sub_coercive[i - 1]:
                assert p[i] == pytest.approx(p[i - 1])

    def test_validation(self):
        dev = FeFET()
        with pytest.raises(ValueError):
            dev.polarization_hysteresis(points_per_branch=2)
        with pytest.raises(ValueError):
            dev.polarization_hysteresis(amplitude=-1.0)
