"""Tests for the in-process simulation service (dispatch, caching,
admission control, per-request reports)."""

import asyncio

import numpy as np
import pytest

from repro.serve import (
    BadRequestError,
    QueueFullError,
    ServiceConfig,
    SimulationService,
)
from repro.utils.telemetry import RunReport

# Small-but-real deployment: wire_resistance > 0 puts every tile on the
# circuit-accurate LU path, whose batched execution is row-independent —
# the property that makes coalesced inference bit-identical.
MODEL = {
    "n_samples": 120,
    "n_features": 16,
    "n_classes": 4,
    "hidden": [8],
    "epochs": 4,
    "wire_resistance": 1.0,
}

SWEEP = {"yields": [1.0, 0.8], "trials": 1, "epochs": 4, "n_samples": 120}


def run(coro):
    return asyncio.run(coro)


def make_service(**overrides):
    defaults = dict(batch_window_s=0.01, max_batch=8)
    defaults.update(overrides)
    return SimulationService(ServiceConfig(**defaults))


def inputs(n, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, size=(n, 16))


def infer_request(x_row, model=MODEL):
    return {"kind": "infer", "params": {"model": model, "x": [list(x_row)]}}


class TestInfer:
    def test_concurrent_infers_coalesce_and_demux_bit_identically(self):
        async def main():
            svc = make_service()
            xs = inputs(6)
            batched = await asyncio.gather(
                *[svc.submit(infer_request(x)) for x in xs]
            )
            serial_svc = make_service(batch_window_s=0.0, max_batch=1)
            serial = [await serial_svc.submit(infer_request(x)) for x in xs]
            return svc, batched, serial

        svc, batched, serial = run(main())
        assert svc.batcher.stats.coalesced_flushes >= 1
        assert svc.batcher.stats.flushes < len(batched)
        for b, s in zip(batched, serial):
            assert b["ok"] and s["ok"]
            # Bit-identical, not approximately equal: the cached/batched
            # serving path must never change answers.
            assert b["result"]["logits"] == s["result"]["logits"]
            assert b["result"]["prediction"] == s["result"]["prediction"]

    def test_warm_infer_is_a_results_cache_hit(self):
        async def main():
            svc = make_service()
            x = inputs(1)[0]
            cold = await svc.submit(infer_request(x))
            warm = await svc.submit(infer_request(x))
            return cold, warm

        cold, warm = run(main())
        assert cold["cache"] == "miss"
        assert warm["cache"] == "hit"
        assert warm["result"] == cold["result"]
        assert warm["report"] == cold["report"]

    def test_model_artifact_is_reused_across_requests(self):
        async def main():
            svc = make_service()
            xs = inputs(3)
            for x in xs:
                await svc.submit(infer_request(x))
            return svc

        svc = run(main())
        stats = svc.artifacts.stats()
        assert stats["misses"] == 1       # deployed once
        assert stats["hits"] == 2         # reused twice
        assert stats["size"] == 1

    def test_per_request_report_is_conservation_valid(self):
        async def main():
            svc = make_service()
            resps = await asyncio.gather(
                *[svc.submit(infer_request(x)) for x in inputs(4)]
            )
            return resps

        for resp in run(main()):
            report = RunReport.from_dict(resp["report"])
            report.validate()
            assert report.total_energy > 0

    def test_coalesced_reports_sum_to_solo_total(self):
        """Row-share apportioning conserves cost: the coalesced requests'
        energies sum to what the same rows cost when run serially."""

        async def main():
            svc = make_service()
            xs = inputs(4, seed=3)
            batched = await asyncio.gather(
                *[svc.submit(infer_request(x)) for x in xs]
            )
            serial_svc = make_service(batch_window_s=0.0, max_batch=1)
            serial = [await serial_svc.submit(infer_request(x)) for x in xs]
            return batched, serial

        batched, serial = run(main())
        batched_total = sum(r["report"]["totals"]["energy"] for r in batched)
        serial_total = sum(r["report"]["totals"]["energy"] for r in serial)
        assert batched_total == pytest.approx(serial_total, rel=1e-9)

    def test_infer_input_validation(self):
        async def main():
            svc = make_service()
            with pytest.raises(BadRequestError, match="requires 'x'"):
                await svc.submit({"kind": "infer", "params": {"model": MODEL}})
            with pytest.raises(BadRequestError, match="unknown infer"):
                await svc.submit(
                    {"kind": "infer", "params": {"x": [[0.1]], "bogus": 1}}
                )

        run(main())


class TestSweepAndDse:
    def test_sweep_cold_then_warm_bit_identical(self):
        async def main():
            svc = make_service()
            cold = await svc.submit({"kind": "sweep", "params": SWEEP})
            warm = await svc.submit({"kind": "sweep", "params": SWEEP})
            return cold, warm

        cold, warm = run(main())
        assert cold["cache"] == "miss" and warm["cache"] == "hit"
        assert cold["result"] == warm["result"]
        assert cold["report"] == warm["report"]
        assert cold["result"]["rows"][0]["yield"] == 1.0
        report = RunReport.from_dict(cold["report"])
        report.validate()
        assert report.total_energy > 0

    def test_workers_stays_out_of_the_cache_key(self):
        """Worker count never changes results (deterministic sweep
        engine), so it must not fork a cache entry."""

        async def main():
            svc = make_service()
            cold = await svc.submit(
                {"kind": "sweep", "params": {**SWEEP, "workers": 0}}
            )
            warm = await svc.submit(
                {"kind": "sweep", "params": {**SWEEP, "workers": 2}}
            )
            return cold, warm

        cold, warm = run(main())
        assert warm["cache"] == "hit"
        assert warm["result"] == cold["result"]

    def test_nested_float_config_difference_misses(self):
        """Satellite regression: a sweep config differing only in one
        nested float must not be served from the other's entry."""
        import math

        async def main():
            svc = make_service()
            a = await svc.submit({"kind": "sweep", "params": SWEEP})
            bumped = dict(
                SWEEP, yields=[1.0, math.nextafter(0.8, 1.0)]
            )
            b = await svc.submit({"kind": "sweep", "params": bumped})
            return a, b

        a, b = run(main())
        assert a["cache"] == "miss"
        assert b["cache"] == "miss"  # NOT a hit despite ulp-level diff

    def test_dse_runs_and_caches(self):
        async def main():
            svc = make_service()
            params = {
                "tile_counts": [4, 8],
                "duplication_modes": ["none"],
                "batch_sizes": [16],
            }
            cold = await svc.submit({"kind": "dse", "params": params})
            warm = await svc.submit({"kind": "dse", "params": params})
            return cold, warm

        cold, warm = run(main())
        assert cold["cache"] == "miss" and warm["cache"] == "hit"
        assert len(cold["result"]["rows"]) == 2
        assert cold["result"] == warm["result"]
        RunReport.from_dict(cold["report"]).validate()

    def test_unknown_sweep_param_rejected(self):
        async def main():
            svc = make_service()
            with pytest.raises(BadRequestError, match="unknown sweep"):
                await svc.submit(
                    {"kind": "sweep", "params": {"trails": 3}}  # typo
                )

        run(main())

    def test_dse_response_carries_pareto_analysis(self):
        async def main():
            svc = make_service()
            return await svc.submit(
                {
                    "kind": "dse",
                    "params": {
                        "tile_counts": [8],
                        "duplication_modes": ["none"],
                        "batch_sizes": [16],
                        "adc_bits": [4, 8],
                    },
                }
            )

        response = run(main())
        pareto = response["result"]["pareto"]
        assert pareto["objectives"] == [
            "accuracy", "energy", "area", "throughput",
        ]
        assert 1 <= len(pareto["front"]) <= pareto["feasible_points"]
        assert pareto["knee"] is not None
        assert set(pareto["sensitivity"]) == {
            "tiles", "duplication", "batch", "adc_bits",
        }
        # Front rows flag the knee so clients need no re-derivation.
        assert sum(1 for r in pareto["front"] if r["knee"]) == 1

    def test_bad_dse_objectives_rejected(self):
        async def main():
            svc = make_service()
            with pytest.raises(BadRequestError, match="objectives"):
                await svc.submit(
                    {"kind": "dse", "params": {"objectives": ["latency"]}}
                )

        run(main())


class TestEnergyModelCacheKeys:
    """Static and value-aware runs of the same config must never share
    a warm cache hit: the parsed spec is part of every result key."""

    DSE = {
        "tile_counts": [8],
        "duplication_modes": ["none"],
        "batch_sizes": [16],
    }

    def test_dse_energy_model_forks_the_cache_key(self):
        async def main():
            svc = make_service()
            static = await svc.submit({"kind": "dse", "params": dict(self.DSE)})
            aware = await svc.submit(
                {
                    "kind": "dse",
                    "params": dict(self.DSE, energy_model="value_aware"),
                }
            )
            aware_warm = await svc.submit(
                {
                    "kind": "dse",
                    "params": dict(self.DSE, energy_model="value_aware"),
                }
            )
            return static, aware, aware_warm

        static, aware, aware_warm = run(main())
        assert static["cache"] == "miss"
        assert aware["cache"] == "miss"  # never a hit off the static entry
        assert aware_warm["cache"] == "hit"
        assert aware_warm["result"] == aware["result"]
        energies = [
            r["result"]["rows"][0]["energy_per_sample"]
            for r in (static, aware)
        ]
        assert energies[0] != energies[1]

    def test_equivalent_energy_model_spellings_share_a_key(self):
        async def main():
            svc = make_service()
            by_name = await svc.submit(
                {
                    "kind": "dse",
                    "params": dict(self.DSE, energy_model="value_aware"),
                }
            )
            by_dict = await svc.submit(
                {
                    "kind": "dse",
                    "params": dict(
                        self.DSE, energy_model={"name": "value_aware"}
                    ),
                }
            )
            return by_name, by_dict

        by_name, by_dict = run(main())
        assert by_name["cache"] == "miss"
        assert by_dict["cache"] == "hit"  # canonicalized spec, same key

    def test_infer_energy_model_forks_key_but_not_answers(self):
        async def main():
            svc = make_service()
            x = inputs(1)[0]
            static = await svc.submit(infer_request(x))
            aware = await svc.submit(
                {
                    "kind": "infer",
                    "params": {
                        "model": MODEL,
                        "x": [list(x)],
                        "energy_model": "value_aware",
                    },
                }
            )
            return static, aware

        static, aware = run(main())
        assert static["cache"] == "miss"
        assert aware["cache"] == "miss"  # not served from the static entry
        # Pricing must never change behaviour, only the energy ledger.
        assert static["result"]["logits"] == aware["result"]["logits"]
        s_rep = RunReport.from_dict(static["report"])
        a_rep = RunReport.from_dict(aware["report"])
        a_rep.validate()
        assert a_rep.total_energy != s_rep.total_energy

    def test_pipeline_energy_model_forks_the_cache_key(self):
        async def main():
            svc = make_service()
            params = {"tiles": 8, "batch": 16}
            static = await svc.submit({"kind": "pipeline", "params": params})
            aware = await svc.submit(
                {
                    "kind": "pipeline",
                    "params": dict(params, energy_model="value_aware"),
                }
            )
            return static, aware

        static, aware = run(main())
        assert static["cache"] == "miss"
        assert aware["cache"] == "miss"

    def test_bad_energy_model_rejected(self):
        async def main():
            svc = make_service()
            with pytest.raises(BadRequestError, match="energy_model"):
                await svc.submit(
                    {
                        "kind": "dse",
                        "params": dict(self.DSE, energy_model="quantum"),
                    }
                )

        run(main())


class TestPipeline:
    def test_pipeline_reuses_graph_and_allocation_artifacts(self):
        async def main():
            svc = make_service()
            base = {"workload": "cnn", "tiles": 8, "batch": 16}
            first = await svc.submit({"kind": "pipeline", "params": base})
            other_tiles = await svc.submit(
                {"kind": "pipeline", "params": {**base, "tiles": 12}}
            )
            warm = await svc.submit({"kind": "pipeline", "params": base})
            return first, other_tiles, warm

        first, other_tiles, warm = run(main())
        assert first["result"]["artifact_hits"] == {
            "graph": False,
            "alloc": False,
        }
        # Same workload, different tile budget: the traced graph is
        # reused, the allocation is not.
        assert other_tiles["result"]["artifact_hits"] == {
            "graph": True,
            "alloc": False,
        }
        assert warm["cache"] == "hit"
        assert warm["result"] == first["result"]
        assert first["result"]["throughput"] > 0
        RunReport.from_dict(first["report"]).validate()


class TestFaultsAndInvalidation:
    def test_fault_injection_invalidates_stale_results(self):
        """Satellite regression: after mutating a deployed model, the
        service must not serve pre-mutation cached results or reuse the
        stale deployment for new inference."""

        async def main():
            svc = make_service()
            x = inputs(1, seed=7)[0]
            before = await svc.submit(infer_request(x))
            faults = await svc.submit(
                {
                    "kind": "faults",
                    "params": {"model": MODEL, "cell_yield": 0.8, "seed": 3},
                }
            )
            after = await svc.submit(infer_request(x))
            return before, faults, after

        before, faults, after = run(main())
        assert before["cache"] == "miss"
        assert faults["ok"] and faults["result"]["fault_rate"] > 0
        assert faults["result"]["invalidated_results"] >= 1
        # The old result was swept out: this is a recompute, not a hit.
        assert after["cache"] == "miss"
        # And it ran on the faulted deployment, not a stale artifact.
        assert after["result"]["logits"] != before["result"]["logits"]
        assert (
            after["result"]["model_version"]
            == before["result"]["model_version"] + 1
        )

    def test_fault_injection_invalidates_lu_factorizations(self):
        """The deployed tiles' LU caches must be flushed on fault
        injection — conductances changed, factorizations are stale."""

        async def main():
            svc = make_service()
            x = inputs(1, seed=8)[0]
            await svc.submit(infer_request(x))
            artifact, hit = svc.model_artifact(MODEL)
            assert hit
            tiles = [
                core
                for layer in artifact.deployed.layers
                for row in layer.accelerator.tiles
                for core in row
            ]
            cached_before = sum(t._ir_solver.cache_len for t in tiles)
            await svc.submit(
                {
                    "kind": "faults",
                    "params": {"model": MODEL, "cell_yield": 0.8, "seed": 3},
                }
            )
            cached_after = sum(t._ir_solver.cache_len for t in tiles)
            return cached_before, cached_after

        cached_before, cached_after = run(main())
        assert cached_before > 0
        assert cached_after == 0

    def test_invalidate_model_drops_artifact_and_results(self):
        async def main():
            svc = make_service()
            x = inputs(1, seed=9)[0]
            await svc.submit(infer_request(x))
            dropped = svc.invalidate_model(MODEL)
            after = await svc.submit(infer_request(x))
            return dropped, after

        dropped, after = run(main())
        assert dropped == {"artifacts": 1, "results": 1}
        assert after["cache"] == "miss"  # redeployed and recomputed

    def test_faults_validation(self):
        async def main():
            svc = make_service()
            with pytest.raises(BadRequestError, match="cell_yield"):
                await svc.submit(
                    {"kind": "faults", "params": {"cell_yield": 1.5}}
                )

        run(main())


ECC = {
    "codes": ["secded", "bch"],
    "yields": [0.999, 0.99],
    "mc_words": 256,
    "trials": 1,
}


class TestEcc:
    def test_ecc_cold_then_warm_bit_identical(self):
        async def main():
            svc = make_service()
            cold = await svc.submit({"kind": "ecc", "params": ECC})
            warm = await svc.submit({"kind": "ecc", "params": ECC})
            return cold, warm

        cold, warm = run(main())
        assert cold["cache"] == "miss" and warm["cache"] == "hit"
        assert cold["result"] == warm["result"]
        assert cold["report"] == warm["report"]
        rows = cold["result"]["rows"]
        assert len(rows) == 2 * 2 * 3  # codes x yields x scenarios
        advice = cold["result"]["advice"]
        assert advice["front"]
        assert advice["knee"]["code"] in ("secded", "bch")
        assert advice["recommendations"]
        report = RunReport.from_dict(cold["report"])
        report.validate()
        assert report.total_energy > 0

    def test_ecc_workers_stays_out_of_the_cache_key(self):
        async def main():
            svc = make_service()
            cold = await svc.submit(
                {"kind": "ecc", "params": {**ECC, "workers": 0}}
            )
            warm = await svc.submit(
                {"kind": "ecc", "params": {**ECC, "workers": 2}}
            )
            return cold, warm

        cold, warm = run(main())
        assert warm["cache"] == "hit"
        assert warm["result"] == cold["result"]

    def test_ecc_energy_model_forks_the_cache_key(self):
        async def main():
            svc = make_service()
            static = await svc.submit({"kind": "ecc", "params": ECC})
            aware = await svc.submit(
                {
                    "kind": "ecc",
                    "params": {**ECC, "energy_model": "value_aware"},
                }
            )
            return static, aware

        static, aware = run(main())
        assert static["cache"] == "miss"
        assert aware["cache"] == "miss"  # never shares the static entry
        # Pricing changes costs, never statistics.
        for s, a in zip(static["result"]["rows"], aware["result"]["rows"]):
            assert a["coverage"] == s["coverage"]
            assert a["energy_per_word_J"] <= s["energy_per_word_J"]

    def test_ecc_validation(self):
        async def main():
            svc = make_service()
            with pytest.raises(BadRequestError, match="unknown ecc"):
                await svc.submit(
                    {"kind": "ecc", "params": {"codez": ["secded"]}}
                )
            with pytest.raises(BadRequestError, match="bad ecc request"):
                await svc.submit(
                    {"kind": "ecc", "params": {**ECC, "codes": ["rs255"]}}
                )

        run(main())


ATTENTION = {
    "seqs": [4],
    "d_heads": [4],
    "micro_batches": [2],
    "d_model": 8,
    "batch": 8,
}

TRAIN = {"lives": [8.0], "drift_nus": [0.01], "epochs": 2}


class TestWorkloadKinds:
    def test_attention_cold_then_warm_bit_identical(self):
        async def main():
            svc = make_service()
            cold = await svc.submit({"kind": "attention", "params": ATTENTION})
            warm = await svc.submit({"kind": "attention", "params": ATTENTION})
            return cold, warm

        cold, warm = run(main())
        assert cold["cache"] == "miss" and warm["cache"] == "hit"
        assert cold["result"] == warm["result"]
        rows = cold["result"]["rows"]
        assert rows[0]["feasible"] is True
        assert rows[0]["bit_identical"] is True
        RunReport.from_dict(cold["report"]).validate()

    def test_train_cold_then_warm_bit_identical(self):
        async def main():
            svc = make_service()
            cold = await svc.submit({"kind": "train", "params": TRAIN})
            warm = await svc.submit({"kind": "train", "params": TRAIN})
            return cold, warm

        cold, warm = run(main())
        assert cold["cache"] == "miss" and warm["cache"] == "hit"
        assert cold["result"] == warm["result"]
        rows = cold["result"]["rows"]
        assert rows[0]["total_pulses"] > 0
        report = RunReport.from_dict(cold["report"])
        report.validate()
        assert report.total_energy > 0  # programming energy was charged

    def test_energy_model_forks_workload_cache_keys(self):
        """Regression: the energy-model spec is part of both workload
        kinds' result fingerprints — a value-aware run must never be
        served a static entry (and vice versa)."""

        async def main():
            svc = make_service()
            results = {}
            for kind, params in (("attention", ATTENTION), ("train", TRAIN)):
                static = await svc.submit({"kind": kind, "params": params})
                aware = await svc.submit(
                    {
                        "kind": kind,
                        "params": {**params, "energy_model": "value_aware"},
                    }
                )
                again = await svc.submit(
                    {
                        "kind": kind,
                        "params": {**params, "energy_model": "value_aware"},
                    }
                )
                results[kind] = (static, aware, again)
            return results

        results = run(main())
        for kind, (static, aware, again) in results.items():
            assert static["cache"] == "miss"
            assert aware["cache"] == "miss", kind
            assert again["cache"] == "hit"
            assert again["result"] == aware["result"]

    def test_workers_stays_out_of_workload_cache_keys(self):
        async def main():
            svc = make_service()
            cold = await svc.submit(
                {"kind": "attention", "params": {**ATTENTION, "workers": 0}}
            )
            warm = await svc.submit(
                {"kind": "attention", "params": {**ATTENTION, "workers": 2}}
            )
            return cold, warm

        cold, warm = run(main())
        assert warm["cache"] == "hit"
        assert warm["result"] == cold["result"]

    def test_workload_validation(self):
        async def main():
            svc = make_service()
            with pytest.raises(BadRequestError, match="unknown attention"):
                await svc.submit(
                    {"kind": "attention", "params": {"seqz": [4]}}
                )
            with pytest.raises(BadRequestError, match="bad train request"):
                await svc.submit(
                    {"kind": "train", "params": {**TRAIN, "backend": "tpu"}}
                )

        run(main())


class TestAdmissionControl:
    def test_queue_full_is_a_structured_rejection(self):
        async def main():
            svc = make_service(
                max_inflight=2, batch_window_s=60.0, max_batch=100
            )
            xs = inputs(3, seed=11)
            parked = [
                asyncio.ensure_future(svc.submit(infer_request(x)))
                for x in xs[:2]
            ]
            await asyncio.sleep(0.02)
            assert svc.inflight == 2
            with pytest.raises(QueueFullError) as excinfo:
                await svc.submit(infer_request(xs[2]))
            payload = excinfo.value.payload()
            svc.batcher.flush_all()
            done = await asyncio.gather(*parked)
            return svc, payload, done

        svc, payload, done = run(main())
        assert payload["code"] == "queue_full"
        assert payload["inflight"] == 2
        assert payload["limit"] == 2
        assert all(r["ok"] for r in done)
        assert svc.requests_rejected == 1
        assert svc.inflight == 0

    def test_rejected_requests_free_no_slots(self):
        async def main():
            svc = make_service(max_inflight=1)
            await svc.submit({"kind": "stats"})
            return svc

        svc = run(main())
        assert svc.inflight == 0
        assert svc.requests_completed == 1


class TestStatsAndLifetime:
    def test_lifetime_report_merges_computed_requests_only(self):
        async def main():
            svc = make_service()
            x = inputs(1, seed=13)[0]
            cold = await svc.submit(infer_request(x))
            await svc.submit(infer_request(x))  # warm hit: no new work
            stats = await svc.submit({"kind": "stats"})
            return cold, stats

        cold, stats = run(main())
        lifetime = RunReport.from_dict(stats["report"])
        lifetime.validate()
        # One computed infer -> lifetime total equals that one request.
        assert lifetime.total_energy == pytest.approx(
            cold["report"]["totals"]["energy"]
        )
        result = stats["result"]
        assert result["requests_by_kind"]["infer"] == 2
        assert result["results_cache"]["request_hits"] == 1
        assert result["batcher"]["requests"] == 1

    def test_bad_kind_and_shape_rejections(self):
        async def main():
            svc = make_service()
            with pytest.raises(BadRequestError, match="unknown request kind"):
                await svc.submit({"kind": "noop"})
            with pytest.raises(BadRequestError, match="JSON object"):
                await svc.submit([1, 2, 3])
            with pytest.raises(BadRequestError, match="params"):
                await svc.submit({"kind": "stats", "params": [1]})

        run(main())
