"""Tests for the ROBDD manager."""

import pytest

from repro.eda.bdd import BDD
from repro.eda.boolean import TruthTable


class TestCanonicity:
    def test_equivalent_builds_share_node(self):
        """Canonicity: same function -> same node id."""
        bdd = BDD(2)
        a, b = bdd.variable(0), bdd.variable(1)
        f1 = bdd.and_(a, b)
        f2 = bdd.not_(bdd.or_(bdd.not_(a), bdd.not_(b)))  # De Morgan
        assert f1 == f2

    def test_constant_reduction(self):
        bdd = BDD(2)
        a = bdd.variable(0)
        assert bdd.and_(a, bdd.not_(a)) == BDD.ZERO
        assert bdd.or_(a, bdd.not_(a)) == BDD.ONE

    def test_xor_self_is_zero(self):
        bdd = BDD(3)
        f = bdd.and_(bdd.variable(0), bdd.variable(2))
        assert bdd.xor_(f, f) == BDD.ZERO


class TestTruthTableRoundTrip:
    @pytest.mark.parametrize("n_vars", [1, 2, 3, 4, 5])
    def test_round_trip(self, n_vars, rng):
        bdd = BDD(n_vars)
        for _ in range(5):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            node = bdd.from_truth_table(table)
            assert bdd.to_truth_table(node) == table

    def test_mismatched_vars_rejected(self):
        with pytest.raises(ValueError):
            BDD(2).from_truth_table(TruthTable.constant(3, True))


class TestEvaluation:
    def test_evaluate_majority(self):
        bdd = BDD(3)
        table = TruthTable.from_function(3, lambda a, b, c: int(a + b + c >= 2))
        node = bdd.from_truth_table(table)
        for m in range(8):
            inputs = [(m >> i) & 1 for i in range(3)]
            assert bdd.evaluate(node, inputs) == table.evaluate(inputs)

    def test_sat_count(self, rng):
        for _ in range(10):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            bdd = BDD(4)
            node = bdd.from_truth_table(table)
            assert bdd.sat_count(node) == table.count_ones()

    def test_count_nodes_parity_linear(self):
        """Parity has a linear-size BDD — the classic structure result."""
        sizes = []
        for n in (4, 6, 8):
            table = TruthTable.from_function(n, lambda *xs: sum(xs) % 2)
            bdd = BDD(n)
            sizes.append(bdd.count_nodes(bdd.from_truth_table(table)))
        assert sizes[1] - sizes[0] == sizes[2] - sizes[1]  # linear growth

    def test_terminal_counts(self):
        bdd = BDD(2)
        assert bdd.count_nodes(BDD.ZERO) == 0
        assert bdd.sat_count(BDD.ONE) == 4


class TestIte:
    def test_ite_is_mux(self, rng):
        bdd = BDD(3)
        ta = TruthTable(3, int(rng.integers(0, 256)))
        tb = TruthTable(3, int(rng.integers(0, 256)))
        sel = TruthTable.variable(3, 2)
        f = bdd.ite(
            bdd.from_truth_table(sel),
            bdd.from_truth_table(ta),
            bdd.from_truth_table(tb),
        )
        expected = (sel & ta) | (~sel & tb)
        assert bdd.to_truth_table(f) == expected
