"""Tests for the HP linear-ion-drift memristor model (Fig 3)."""

import numpy as np
import pytest

from repro.devices.memristor import (
    LinearIonDriftMemristor,
    MemristorParams,
    biolek_window,
    rectangular_window,
)


class TestMemristorParams:
    def test_defaults_valid(self):
        p = MemristorParams()
        assert p.r_off > p.r_on

    def test_rejects_inverted_resistances(self):
        with pytest.raises(ValueError, match="r_off"):
            MemristorParams(r_on=1000, r_off=100)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MemristorParams(thickness=0)

    def test_gain_positive(self):
        assert MemristorParams().k > 0


class TestWindows:
    def test_biolek_zero_at_boundaries(self):
        # Approaching x=1 with positive current locks against the boundary.
        assert biolek_window(1.0, +1.0) == pytest.approx(0.0)
        assert biolek_window(0.0, -1.0) == pytest.approx(0.0)

    def test_biolek_allows_escape_from_boundary(self):
        # At x=1 a negative current sees a nonzero window.
        assert biolek_window(1.0, -1.0) == pytest.approx(1.0)
        assert biolek_window(0.0, +1.0) == pytest.approx(1.0)

    def test_biolek_invalid_exponent(self):
        with pytest.raises(ValueError, match="exponent"):
            biolek_window(0.5, 1.0, p=0)

    def test_rectangular_is_one(self):
        assert np.all(rectangular_window(np.linspace(0, 1, 5), 1.0) == 1.0)


class TestDeviceState:
    def test_resistance_interpolates(self):
        p = MemristorParams()
        lo = LinearIonDriftMemristor(p, x0=1.0).resistance
        hi = LinearIonDriftMemristor(p, x0=0.0).resistance
        mid = LinearIonDriftMemristor(p, x0=0.5).resistance
        assert lo == pytest.approx(p.r_on)
        assert hi == pytest.approx(p.r_off)
        assert lo < mid < hi

    def test_conductance_is_reciprocal(self):
        dev = LinearIonDriftMemristor(x0=0.3)
        assert dev.conductance == pytest.approx(1.0 / dev.resistance)

    def test_state_setter_validates(self):
        dev = LinearIonDriftMemristor()
        with pytest.raises(ValueError):
            dev.state = 1.5

    def test_invalid_x0(self):
        with pytest.raises(ValueError):
            LinearIonDriftMemristor(x0=-0.1)


class TestDynamics:
    def test_positive_voltage_sets_toward_lrs(self):
        dev = LinearIonDriftMemristor(x0=0.2)
        r_before = dev.resistance
        dev.apply_voltage(1.0, duration=1e-3, dt=1e-6)
        assert dev.resistance < r_before
        assert dev.state > 0.2

    def test_negative_voltage_resets_toward_hrs(self):
        dev = LinearIonDriftMemristor(x0=0.8)
        dev.apply_voltage(-1.0, duration=1e-3, dt=1e-6)
        assert dev.state < 0.8

    def test_state_stays_bounded(self):
        dev = LinearIonDriftMemristor(x0=0.5)
        dev.apply_voltage(5.0, duration=10e-3, dt=1e-6)
        assert 0.0 <= dev.state <= 1.0

    def test_step_returns_ohmic_current(self):
        dev = LinearIonDriftMemristor(x0=0.5)
        r = dev.resistance
        i = dev.step(0.5, dt=1e-9)
        assert i == pytest.approx(0.5 / r)

    def test_step_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            LinearIonDriftMemristor().step(1.0, dt=0)

    def test_nonvolatile_between_pulses(self):
        dev = LinearIonDriftMemristor(x0=0.3)
        dev.apply_voltage(1.0, duration=1e-4)
        state = dev.state
        # Zero-voltage hold does not move the state (non-volatility).
        for _ in range(100):
            dev.step(0.0, dt=1e-6)
        assert dev.state == pytest.approx(state)


class TestHysteresis:
    def test_pinched_loop(self):
        dev = LinearIonDriftMemristor(x0=0.1)
        result = dev.sweep(amplitude=1.0, frequency=10, points_per_cycle=1000)
        assert result.hysteresis_is_pinched()

    def test_loop_area_positive_at_low_frequency(self):
        dev = LinearIonDriftMemristor(x0=0.1)
        result = dev.sweep(amplitude=1.0, frequency=10, points_per_cycle=1000)
        assert result.loop_area() > 0

    def test_loop_area_shrinks_with_frequency(self):
        """The second memristor fingerprint: the loop degenerates to a
        straight line as the drive frequency rises."""
        slow = LinearIonDriftMemristor(x0=0.1).sweep(1.0, 10, points_per_cycle=1000)
        fast = LinearIonDriftMemristor(x0=0.1).sweep(1.0, 10_000, points_per_cycle=1000)
        assert fast.loop_area() < slow.loop_area() / 10

    def test_sweep_validates_args(self):
        dev = LinearIonDriftMemristor()
        with pytest.raises(ValueError):
            dev.sweep(amplitude=0, frequency=10)
        with pytest.raises(ValueError):
            dev.sweep(amplitude=1, frequency=10, cycles=0)

    def test_sweep_trace_shapes(self):
        result = LinearIonDriftMemristor().sweep(1.0, 100, cycles=2, points_per_cycle=50)
        assert len(result.time) == 100
        assert len(result.voltage) == len(result.current) == len(result.state)


class TestFastKernels:
    """The vectorized-loop pulse/sweep backends must be bit-equal to the
    scalar reference path (``backend="scalar"``, stepping via .step())."""

    VOLTAGES = (1.2, -1.5, 0.3, -0.05, 2.5)

    def test_apply_voltage_bit_equal(self):
        for v in self.VOLTAGES:
            for x0 in (0.0, 0.1, 0.5, 0.99, 1.0):
                ref = LinearIonDriftMemristor(x0=x0)
                fast = LinearIonDriftMemristor(x0=x0)
                ref.apply_voltage(v, duration=2e-4, dt=1e-6, backend="scalar")
                fast.apply_voltage(v, duration=2e-4, dt=1e-6, backend="fast")
                assert fast.state == ref.state, (v, x0)

    def test_apply_voltage_saturating_pulse_bit_equal(self):
        """Long SET pulse drives the state to a fixed point; the fast
        kernel's early exit must land on the identical float."""
        ref = LinearIonDriftMemristor(x0=0.2)
        fast = LinearIonDriftMemristor(x0=0.2)
        ref.apply_voltage(2.0, duration=0.05, dt=1e-6, backend="scalar")
        fast.apply_voltage(2.0, duration=0.05, dt=1e-6, backend="fast")
        assert fast.state == ref.state

    def test_apply_voltage_auto_matches_scalar(self):
        ref = LinearIonDriftMemristor(x0=0.4)
        auto = LinearIonDriftMemristor(x0=0.4)
        ref.apply_voltage(1.0, duration=1e-4, backend="scalar")
        auto.apply_voltage(1.0, duration=1e-4)  # default backend="auto"
        assert auto.state == ref.state

    def test_sweep_trace_bit_equal(self):
        ref = LinearIonDriftMemristor(x0=0.3)
        fast = LinearIonDriftMemristor(x0=0.3)
        a = ref.sweep(1.5, 50.0, cycles=2, points_per_cycle=400,
                      backend="scalar")
        b = fast.sweep(1.5, 50.0, cycles=2, points_per_cycle=400,
                       backend="fast")
        assert np.array_equal(a.current, b.current)
        assert np.array_equal(a.state, b.state)
        assert fast.state == ref.state

    def test_window_exponent_respected(self):
        for exponent in (1, 3):
            params = MemristorParams(window_exponent=exponent)
            ref = LinearIonDriftMemristor(params, x0=0.3)
            fast = LinearIonDriftMemristor(params, x0=0.3)
            ref.apply_voltage(1.0, duration=1e-4, backend="scalar")
            fast.apply_voltage(1.0, duration=1e-4, backend="fast")
            assert fast.state == ref.state

    def test_custom_window_auto_falls_back_to_scalar(self):
        ref = LinearIonDriftMemristor(window=rectangular_window, x0=0.3)
        auto = LinearIonDriftMemristor(window=rectangular_window, x0=0.3)
        ref.apply_voltage(1.0, duration=1e-4, backend="scalar")
        auto.apply_voltage(1.0, duration=1e-4, backend="auto")
        assert auto.state == ref.state

    def test_custom_window_rejects_fast(self):
        dev = LinearIonDriftMemristor(window=rectangular_window)
        with pytest.raises(ValueError, match="Biolek"):
            dev.apply_voltage(1.0, duration=1e-4, backend="fast")
        with pytest.raises(ValueError, match="Biolek"):
            dev.sweep(1.0, 50.0, backend="fast")

    def test_unknown_backend_rejected(self):
        dev = LinearIonDriftMemristor()
        with pytest.raises(ValueError, match="backend"):
            dev.apply_voltage(1.0, duration=1e-4, backend="numba")

    def test_fast_kernel_is_faster(self):
        import time

        ref = LinearIonDriftMemristor(x0=0.5)
        fast = LinearIonDriftMemristor(x0=0.5)
        t0 = time.perf_counter()
        ref.sweep(1.0, 50.0, cycles=1, points_per_cycle=3000,
                  backend="scalar")
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast.sweep(1.0, 50.0, cycles=1, points_per_cycle=3000,
                   backend="fast")
        t_fast = time.perf_counter() - t0
        assert t_fast < t_ref  # tier-1 smoke; the real gate is in benchmarks
