"""Tests for weight-to-conductance mappings and input encoders."""

import numpy as np
import pytest

from repro.crossbar.mapping import (
    BitSlicedMapping,
    DifferentialPairMapping,
    InputEncoder,
    OffsetColumnMapping,
)
from repro.devices.reram import ConductanceLevels


@pytest.fixture
def weights(rng):
    return rng.uniform(-1, 1, (16, 8))


@pytest.fixture
def inputs(rng):
    return rng.uniform(0, 1, 16)


def _decode_via_ideal_crossbar(mapping, weights, x, v_read=0.2):
    targets = mapping.map(weights)
    voltages = x * v_read
    currents = voltages @ targets
    return mapping.decode(currents, voltages, v_scale=v_read)


class TestDifferentialPair:
    def test_exact_round_trip(self, weights, inputs):
        mapping = DifferentialPairMapping()
        decoded = _decode_via_ideal_crossbar(mapping, weights, inputs)
        assert np.allclose(decoded, inputs @ weights)

    def test_column_cost(self):
        assert DifferentialPairMapping().columns_per_weight == 2

    def test_conductances_in_range(self, weights):
        mapping = DifferentialPairMapping()
        g = mapping.map(weights)
        assert np.all(g >= mapping.levels.g_min - 1e-18)
        assert np.all(g <= mapping.levels.g_max + 1e-18)

    def test_rejects_overrange_weights(self):
        mapping = DifferentialPairMapping(w_max=1.0)
        with pytest.raises(ValueError, match="w_max"):
            mapping.map(np.array([[1.5]]))

    def test_odd_column_decode_rejected(self):
        mapping = DifferentialPairMapping()
        with pytest.raises(ValueError, match="even"):
            mapping.decode(np.zeros(5), np.zeros(4))

    def test_zero_weight_maps_to_floor_pair(self):
        mapping = DifferentialPairMapping()
        g = mapping.map(np.array([[0.0]]))
        assert g[0, 0] == pytest.approx(mapping.levels.g_min)
        assert g[0, 1] == pytest.approx(mapping.levels.g_min)


class TestOffsetColumn:
    def test_exact_round_trip(self, weights, inputs):
        mapping = OffsetColumnMapping()
        decoded = _decode_via_ideal_crossbar(mapping, weights, inputs)
        assert np.allclose(decoded, inputs @ weights)

    def test_reference_column_appended(self, weights):
        mapping = OffsetColumnMapping()
        g = mapping.map(weights)
        assert g.shape == (16, 9)
        assert np.allclose(g[:, -1], mapping.reference_conductance)

    def test_amortized_column_cost(self):
        assert OffsetColumnMapping().columns_per_weight == 1


class TestBitSliced:
    def test_round_trip_within_quantization(self, weights, inputs):
        mapping = BitSlicedMapping(
            levels=ConductanceLevels(n_levels=4),
            weight_bits=8,
            bits_per_cell=2,
        )
        decoded = _decode_via_ideal_crossbar(mapping, weights, inputs)
        exact = inputs @ mapping.quantize(weights) / mapping._q_max
        assert np.allclose(decoded, exact, atol=1e-9)

    def test_slice_count(self):
        mapping = BitSlicedMapping(
            levels=ConductanceLevels(n_levels=4), weight_bits=8, bits_per_cell=2
        )
        assert mapping.n_slices == 4
        assert mapping.columns_per_weight == 4

    def test_quantize_symmetric(self):
        mapping = BitSlicedMapping(levels=ConductanceLevels(n_levels=4))
        q = mapping.quantize(np.array([[1.0, -1.0, 0.0]]))
        assert q[0, 0] == -q[0, 1]
        assert q[0, 2] == 0

    def test_incompatible_ladder_rejected(self):
        with pytest.raises(ValueError, match="levels"):
            BitSlicedMapping(
                levels=ConductanceLevels(n_levels=2),
                weight_bits=8,
                bits_per_cell=2,
            )

    def test_indivisible_bits_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            BitSlicedMapping(
                levels=ConductanceLevels(n_levels=8),
                weight_bits=8,
                bits_per_cell=3,
            )


class TestInputEncoder:
    def test_amplitude_scaling(self):
        enc = InputEncoder(v_read=0.2)
        v = enc.amplitude(np.array([0.0, 0.5, 1.0]))
        assert np.allclose(v, [0.0, 0.1, 0.2])

    def test_amplitude_rejects_out_of_range(self):
        enc = InputEncoder()
        with pytest.raises(ValueError):
            enc.amplitude(np.array([1.2]))

    def test_bit_serial_reconstruction(self, rng):
        """Bit-serial planes recombine to the amplitude-encoded product
        within input quantization."""
        enc = InputEncoder(v_read=0.2, input_bits=8)
        x = rng.uniform(0, 1, 16)
        g = rng.uniform(1e-6, 1e-4, (16, 4))
        planes = enc.bit_serial_planes(x)
        plane_currents = [(s, v @ g) for s, v in planes]
        combined = enc.bit_serial_combine(plane_currents)
        exact = (x * enc.v_read) @ g
        assert np.allclose(combined, exact, rtol=0.01)

    def test_bit_serial_plane_count(self):
        enc = InputEncoder(input_bits=6)
        planes = enc.bit_serial_planes(np.array([0.3]))
        assert len(planes) == 6

    def test_bit_serial_planes_are_binary(self):
        enc = InputEncoder(v_read=0.2, input_bits=4)
        for _, v in enc.bit_serial_planes(np.array([0.7, 0.1])):
            assert set(np.round(v, 9)).issubset({0.0, 0.2})

    def test_empty_combine_rejected(self):
        with pytest.raises(ValueError):
            InputEncoder().bit_serial_combine([])
