"""Tests for the Majority-Inverter Graph."""

import pytest

from repro.eda.aig import FALSE_LIT, TRUE_LIT, lit_not
from repro.eda.boolean import TruthTable
from repro.eda.mig import MIG, mig_from_aig, mig_from_truth_table
from repro.eda.aig import AIG, aig_from_truth_table


class TestAxioms:
    def test_majority_rule_two_equal(self):
        mig = MIG(2)
        a = mig.input_lit(0)
        c = mig.input_lit(1)
        assert mig.maj(a, a, c) == a
        assert mig.n_nodes == 0

    def test_complementary_rule(self):
        mig = MIG(2)
        a = mig.input_lit(0)
        c = mig.input_lit(1)
        assert mig.maj(a, lit_not(a), c) == c
        assert mig.n_nodes == 0

    def test_and_or_via_constants(self):
        mig = MIG(2)
        a, b = mig.input_lit(0), mig.input_lit(1)
        mig.add_output(mig.and_(a, b))
        mig.add_output(mig.or_(a, b))
        tables = mig.to_truth_tables()
        assert tables[0] == TruthTable.from_function(2, lambda x, y: x & y)
        assert tables[1] == TruthTable.from_function(2, lambda x, y: x | y)

    def test_structural_hashing(self):
        mig = MIG(3)
        a, b, c = (mig.input_lit(i) for i in range(3))
        n1 = mig.maj(a, b, c)
        n2 = mig.maj(c, a, b)
        assert n1 == n2
        assert mig.n_nodes == 1

    def test_self_duality_normalization(self):
        """M(NOT a, NOT b, NOT c) = NOT M(a, b, c): both directions hash
        to the same node."""
        mig = MIG(3)
        a, b, c = (mig.input_lit(i) for i in range(3))
        pos = mig.maj(a, b, c)
        neg = mig.maj(lit_not(a), lit_not(b), lit_not(c))
        assert neg == lit_not(pos)
        assert mig.n_nodes == 1


class TestSemantics:
    def test_majority_simulation(self):
        mig = MIG(3)
        a, b, c = (mig.input_lit(i) for i in range(3))
        mig.add_output(mig.maj(a, b, c))
        for m in range(8):
            inputs = [(m >> i) & 1 for i in range(3)]
            assert mig.simulate(inputs)[0] == int(sum(inputs) >= 2)

    def test_xor_construction(self):
        mig = MIG(2)
        a, b = mig.input_lit(0), mig.input_lit(1)
        mig.add_output(mig.xor_(a, b))
        assert mig.to_truth_tables()[0] == TruthTable.from_function(
            2, lambda x, y: x ^ y
        )


class TestConversion:
    @pytest.mark.parametrize("n_vars", [2, 3, 4])
    def test_aig_conversion_preserves_function(self, n_vars, rng):
        for _ in range(5):
            table = TruthTable(n_vars, int(rng.integers(0, 1 << (1 << n_vars))))
            aig, out = aig_from_truth_table(table)
            aig.add_output(out)
            mig = mig_from_aig(aig)
            assert mig.to_truth_tables()[0] == table

    def test_direct_synthesis(self):
        table = TruthTable.from_function(3, lambda a, b, c: (a & b) ^ c)
        mig = mig_from_truth_table(table)
        assert mig.to_truth_tables()[0] == table


class TestDepthOptimization:
    def test_preserves_function(self, rng):
        for seed in range(10):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            mig = mig_from_truth_table(table)
            optimized = mig.depth_optimize()
            assert optimized.to_truth_tables()[0] == table

    def test_never_increases_depth(self, rng):
        for _ in range(10):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            mig = mig_from_truth_table(table)
            assert mig.depth_optimize().levels() <= mig.levels()

    def test_reduces_depth_on_chain(self):
        """An unbalanced AND chain rebalances: depth n-1 -> ~log n."""
        mig = MIG(8)
        acc = mig.input_lit(0)
        for i in range(1, 8):
            acc = mig.and_(acc, mig.input_lit(i))
        mig.add_output(acc)
        optimized = mig.depth_optimize(rounds=5)
        assert optimized.levels() < mig.levels()
        table = TruthTable.from_function(8, lambda *xs: all(xs))
        assert optimized.to_truth_tables()[0] == table


class TestMetrics:
    def test_levels_counting(self):
        mig = MIG(4)
        a, b, c, d = (mig.input_lit(i) for i in range(4))
        ab = mig.and_(a, b)
        abc = mig.and_(ab, c)
        mig.add_output(mig.and_(abc, d))
        assert mig.levels() == 3

    def test_input_validation(self):
        mig = MIG(1)
        with pytest.raises(ValueError):
            mig.input_lit(1)
        with pytest.raises(ValueError):
            mig.simulate([0, 1])
