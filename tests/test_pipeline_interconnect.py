"""Tests for the inter-tile transfer model (repro.pipeline.interconnect)."""

import pytest

from repro.pipeline import Interconnect, InterconnectParams
from repro.utils import telemetry


class TestInterconnect:
    def test_latency_is_setup_plus_serialization(self):
        ic = Interconnect(
            InterconnectParams(
                bandwidth=1e9, hop_latency=1e-6, bytes_per_value=2
            )
        )
        assert ic.transfer_latency(500) == pytest.approx(1e-6 + 1000 / 1e9)

    def test_transfer_charges_costs(self):
        ic = Interconnect()
        lat = ic.transfer(100)
        assert lat > 0
        entry = ic.costs.by_category["interconnect"]
        assert entry.energy == pytest.approx(
            200 * ic.params.energy_per_byte
        )
        assert entry.data_moved == 200
        assert ic.transfers == 1
        assert ic.bytes_moved == 200

    def test_multi_hop_scales(self):
        one = Interconnect()
        two = Interconnect()
        one.transfer(64, hops=1)
        two.transfer(64, hops=2)
        assert two.bytes_moved == 2 * one.bytes_moved
        assert two.costs.total.latency == pytest.approx(
            2 * one.costs.total.latency
        )

    def test_zero_values_is_free(self):
        ic = Interconnect()
        assert ic.transfer(0) == 0.0
        assert ic.transfers == 0
        assert ic.costs.total.energy == 0

    def test_negative_rejected(self):
        ic = Interconnect()
        with pytest.raises(ValueError, match="n_values"):
            ic.transfer(-1)
        with pytest.raises(ValueError, match="hops"):
            ic.transfer(1, hops=0)

    def test_telemetry_side_counters(self):
        ic = Interconnect()
        with telemetry.scoped() as scope:
            ic.transfer(100)
        counters = scope.snapshot(include_timers=False)["counters"]
        assert counters["pipeline.transfer.bytes"] == 200
        assert counters["pipeline.transfers"] == 1
        # Energy mirrored by the cost accumulator too.
        assert counters["cost.energy.interconnect"] == pytest.approx(
            200 * ic.params.energy_per_byte
        )

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            InterconnectParams(bandwidth=0)
        with pytest.raises(ValueError):
            InterconnectParams(bytes_per_value=0)
