"""Tests for the neuromorphic MLP on CIM (and the [38] yield experiment)."""

import numpy as np
import pytest

from repro.apps.datasets import gaussian_blobs
from repro.apps.nn import MLP, CrossbarMLP, accuracy_vs_yield


@pytest.fixture(scope="module")
def trained_setup():
    x, y = gaussian_blobs(
        n_samples=300, n_features=16, n_classes=4, separation=2.5, rng=0
    )
    mlp = MLP([16, 16, 4], rng=1)
    mlp.train(x[:200], y[:200], epochs=40, rng=2)
    return mlp, x, y


class TestSoftwareMLP:
    def test_training_improves_accuracy(self):
        x, y = gaussian_blobs(n_samples=200, rng=3)
        mlp = MLP([16, 12, 4], rng=4)
        before = mlp.accuracy(x, y)
        mlp.train(x, y, epochs=30, rng=5)
        assert mlp.accuracy(x, y) > max(before, 0.8)

    def test_forward_is_distribution(self, trained_setup):
        mlp, x, _ = trained_setup
        probs = mlp.forward(x[:10])
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_layer_size_validation(self):
        with pytest.raises(ValueError):
            MLP([16])
        with pytest.raises(ValueError):
            MLP([16, 0, 4])


class TestCrossbarDeployment:
    def test_deployed_accuracy_close_to_software(self, trained_setup):
        mlp, x, y = trained_setup
        deployed = CrossbarMLP(mlp, calibration=x[:200], rng=6)
        sw = mlp.accuracy(x[200:], y[200:])
        hw = deployed.accuracy(x[200:], y[200:], noisy=False)
        assert hw >= sw - 0.1

    def test_predictions_mostly_agree(self, trained_setup):
        mlp, x, y = trained_setup
        deployed = CrossbarMLP(mlp, calibration=x[:200], rng=7)
        agreement = np.mean(
            deployed.predict(x[200:250], noisy=False) == mlp.predict(x[200:250])
        )
        assert agreement > 0.9

    def test_fault_injection_degrades(self, trained_setup):
        mlp, x, y = trained_setup
        deployed = CrossbarMLP(mlp, calibration=x[:200], rng=8)
        clean = deployed.accuracy(x[200:], y[200:], noisy=False)
        rate = deployed.inject_yield_faults(0.6, rng=9)
        faulty = deployed.accuracy(x[200:], y[200:], noisy=False)
        assert rate == pytest.approx(0.4, abs=0.06)
        assert faulty < clean


class TestAccuracyVsYield:
    """The [38] experiment the paper quotes."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return accuracy_vs_yield(
            yields=(1.0, 0.9, 0.8, 0.6), n_samples=300, rng=0
        )

    def test_clean_network_is_accurate(self, sweep):
        assert sweep[0]["accuracy"] > 0.9

    def test_accuracy_degrades_with_yield(self, sweep):
        accs = [row["accuracy"] for row in sweep]
        assert accs[-1] < accs[0]
        assert sweep[-1]["drop"] > sweep[1]["drop"]

    def test_drop_at_80_percent_yield_substantial(self, sweep):
        """'reduced by 35% when the yield drops to 80%' — we require the
        same order of magnitude (>= 20 points) on the synthetic stand-in."""
        row = next(r for r in sweep if r["yield"] == 0.8)
        assert row["drop"] >= 0.20

    def test_fault_rates_match_yield(self, sweep):
        for row in sweep:
            if row["yield"] < 1.0:
                assert row["fault_rate"] == pytest.approx(
                    1 - row["yield"], abs=0.05
                )
