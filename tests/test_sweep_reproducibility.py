"""Seed-reproducibility of the ported statistical sweeps.

The acceptance bar for the sweep engine: the same seed yields
bit-identical results whether a sweep runs serially (``workers=0``, the
tier-1 default) or fanned out over a process pool — for every consumer
that was ported onto it.
"""

import numpy as np
import pytest

from repro.apps.cnn import cnn_accuracy_vs_yield
from repro.apps.nn import accuracy_vs_yield
from repro.costs import use_model
from repro.faults.sweeps import endurance_capability_sweep, yield_fault_rate_sweep
from repro.pipeline.explore import explore_pipeline
from repro.testing.ecc import EccAnalysis, HammingSecDed

# Small configurations: these tests check determinism, not statistics.
_NN_KW = dict(yields=(1.0, 0.8), trials=2, n_samples=120, epochs=15)
_CNN_KW = dict(yields=(1.0, 0.7), trials=2, n_samples=90, epochs=8)

#: Every ported consumer must be bit-identical across this worker ladder
#: (0 = serial reference; the pool sizes cover n_jobs < workers too).
WORKER_LADDER = (1, 2, 4)


class TestAccuracyVsYield:
    def test_same_seed_identical_rows(self):
        assert accuracy_vs_yield(rng=0, **_NN_KW) == accuracy_vs_yield(
            rng=0, **_NN_KW
        )

    @pytest.mark.parametrize("workers", WORKER_LADDER)
    def test_serial_vs_parallel_bit_identical(self, workers):
        serial = accuracy_vs_yield(rng=0, workers=0, **_NN_KW)
        parallel = accuracy_vs_yield(rng=0, workers=workers, **_NN_KW)
        assert serial == parallel

    def test_different_seed_differs(self):
        a = accuracy_vs_yield(rng=0, **_NN_KW)
        b = accuracy_vs_yield(rng=1, **_NN_KW)
        assert a != b


class TestCnnAccuracyVsYield:
    @pytest.mark.parametrize("workers", WORKER_LADDER)
    def test_serial_vs_parallel_bit_identical(self, workers):
        serial = cnn_accuracy_vs_yield(rng=0, workers=0, **_CNN_KW)
        parallel = cnn_accuracy_vs_yield(rng=0, workers=workers, **_CNN_KW)
        assert serial == parallel

    def test_row_schema(self):
        rows = cnn_accuracy_vs_yield(rng=0, **_CNN_KW)
        assert [r["yield"] for r in rows] == list(_CNN_KW["yields"])
        for row in rows:
            assert set(row) == {
                "yield",
                "fault_rate",
                "accuracy",
                "clean_accuracy",
                "drop",
            }


class TestEccMonteCarlo:
    @pytest.fixture(scope="class")
    def analysis(self):
        return EccAnalysis(HammingSecDed(16))

    def test_same_rng_identical_rate(self, analysis):
        a = analysis.monte_carlo_failure_rate(0.02, trials=2000, rng=7)
        b = analysis.monte_carlo_failure_rate(0.02, trials=2000, rng=7)
        assert a == b

    @pytest.mark.parametrize("workers", WORKER_LADDER)
    def test_serial_vs_parallel_bit_identical(self, analysis, workers):
        serial = analysis.monte_carlo_failure_rate(
            0.02, trials=2000, rng=7, workers=0
        )
        parallel = analysis.monte_carlo_failure_rate(
            0.02, trials=2000, rng=7, workers=workers
        )
        assert serial == parallel

    def test_vectorized_matches_scalar_statistics(self, analysis):
        """The vectorized path is a different (blocked) rng consumption
        order, so rates are not bit-equal to the scalar loop — but both
        estimate the same probability."""
        vec = analysis.monte_carlo_failure_rate(0.02, trials=4000, rng=0)
        scalar = analysis.monte_carlo_failure_rate(
            0.02, trials=4000, rng=0, vectorized=False
        )
        analytic = analysis.word_failure_probability(0.02)
        assert vec == pytest.approx(analytic, rel=0.35)
        assert scalar == pytest.approx(analytic, rel=0.35)


class TestFaultSweeps:
    @pytest.mark.parametrize("workers", WORKER_LADDER)
    def test_yield_sweep_serial_vs_parallel(self, workers):
        kw = dict(yields=(0.9, 0.7), shape=(16, 16), trials=4, rng=0)
        assert yield_fault_rate_sweep(workers=0, **kw) == yield_fault_rate_sweep(
            workers=workers, **kw
        )

    def test_yield_sweep_rates_track_yield(self):
        rows = yield_fault_rate_sweep(
            yields=(0.95, 0.7), shape=(32, 32), trials=8, rng=0
        )
        assert rows[0]["mean_rate"] == pytest.approx(0.05, abs=0.03)
        assert rows[1]["mean_rate"] == pytest.approx(0.30, abs=0.05)

    @pytest.mark.parametrize("workers", WORKER_LADDER)
    def test_endurance_sweep_serial_vs_parallel(self, workers):
        kw = dict(trials=3, shape=(16, 16), rng=0)
        assert endurance_capability_sweep(
            workers=0, **kw
        ) == endurance_capability_sweep(workers=workers, **kw)

    def test_endurance_sweep_exceeds_within_horizon(self):
        out = endurance_capability_sweep(trials=4, shape=(16, 16), rng=0)
        assert out["exceeded_fraction"] == 1.0
        assert np.isfinite(out["mean_exceeded_at"])


class TestPipelineExplore:
    """The DSE consumer: point-major grid over tiles x duplication."""

    _KW = dict(
        tile_counts=(4, 8),
        duplication_modes=("none",),
        batch_sizes=(16,),
        workload="mlp",
        micro_batch=4,
        seed=0,
    )

    @pytest.mark.parametrize("workers", WORKER_LADDER)
    def test_serial_vs_parallel_bit_identical(self, workers):
        serial = explore_pipeline(workers=0, **self._KW)
        parallel = explore_pipeline(workers=workers, **self._KW)
        assert serial == parallel


class TestSweepReports:
    """Telemetry capture must not break determinism: the reduced report is
    bit-identical at any worker count, and capture leaves results alone."""

    def test_yield_sweep_report_serial_vs_parallel(self):
        kw = dict(yields=(0.9, 0.8), shape=(16, 16), trials=4, rng=0)
        rows0, rep0 = yield_fault_rate_sweep(workers=0, with_report=True, **kw)
        rows2, rep2 = yield_fault_rate_sweep(workers=2, with_report=True, **kw)
        assert rows0 == rows2
        assert rep0.to_json() == rep2.to_json()
        assert rep0.counters["faults.injected_cells"] > 0

    def test_capture_does_not_change_rows(self):
        kw = dict(yields=(0.9,), shape=(16, 16), trials=3, rng=0)
        plain = yield_fault_rate_sweep(**kw)
        rows, _ = yield_fault_rate_sweep(with_report=True, **kw)
        assert plain == rows

    def test_endurance_summary_carries_report(self):
        summary = endurance_capability_sweep(
            trials=2, shape=(16, 16), total_writes=1e4, step=5e3,
            with_report=True,
        )
        report = summary["report"]
        report.validate()
        assert report.label == "endurance_capability_sweep"

    def test_nn_sweep_report_serial_vs_parallel(self):
        rows0, rep0 = accuracy_vs_yield(
            rng=0, workers=0, with_report=True, **_NN_KW
        )
        rows2, rep2 = accuracy_vs_yield(
            rng=0, workers=2, with_report=True, **_NN_KW
        )
        assert rows0 == rows2
        assert rep0.to_json() == rep2.to_json()
        # The captured breakdown covers the analog datapath.
        assert rep0.categories["adc"]["energy"] > 0


class TestValueAwareSweeps:
    """Value-aware pricing must survive the worker ladder bit-for-bit:
    the active spec ships through the pool initializer, and both pricing
    modes are pure functions of the charged values."""

    _KW = dict(
        tile_counts=(4, 8),
        duplication_modes=("none",),
        batch_sizes=(16,),
        adc_bits=(6, 8),
        workload="mlp",
        micro_batch=4,
        seed=0,
    )

    @pytest.mark.parametrize("workers", WORKER_LADDER)
    @pytest.mark.parametrize(
        "model", ("value_aware", "value_aware_statistical")
    )
    def test_explore_serial_vs_parallel_bit_identical(self, workers, model):
        with use_model(model):
            serial = explore_pipeline(workers=0, **self._KW)
            parallel = explore_pipeline(workers=workers, **self._KW)
        assert serial == parallel

    def test_value_aware_changes_energy_only(self):
        static_rows = explore_pipeline(workers=0, **self._KW)
        with use_model("value_aware"):
            va_rows = explore_pipeline(workers=0, **self._KW)
        feasible = [
            (s, v)
            for s, v in zip(static_rows, va_rows)
            if s["feasible"]
        ]
        assert feasible
        assert any(
            s["energy_per_sample"] != v["energy_per_sample"]
            for s, v in feasible
        )
        # Pricing never touches behaviour or timing.
        for s, v in feasible:
            assert s["accuracy"] == v["accuracy"]
            assert s["throughput"] == v["throughput"]
            assert s["area_mm2"] == v["area_mm2"]

    def test_nn_sweep_value_aware_report_serial_vs_parallel(self):
        with use_model("value_aware"):
            rows0, rep0 = accuracy_vs_yield(
                rng=0, workers=0, with_report=True, **_NN_KW
            )
            rows2, rep2 = accuracy_vs_yield(
                rng=0, workers=2, with_report=True, **_NN_KW
            )
        assert rows0 == rows2
        assert rep0.to_json() == rep2.to_json()
        rep0.validate()
        assert rep0.categories["adc"]["energy"] > 0
