"""API-surface checks: every exported name resolves, every module of the
library is importable, and the public inventory stays consistent."""

import importlib
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.utils",
    "repro.devices",
    "repro.crossbar",
    "repro.periphery",
    "repro.core",
    "repro.faults",
    "repro.testing",
    "repro.eda",
    "repro.ferfet",
    "repro.apps",
    "repro.pipeline",
    "repro.serve",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_every_module_importable():
    failures = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        try:
            importlib.import_module(info.name)
        except Exception as exc:  # pragma: no cover - should never happen
            failures.append((info.name, exc))
    assert not failures


def test_top_level_inventory():
    assert set(repro.__all__) >= {
        "devices",
        "crossbar",
        "periphery",
        "core",
        "faults",
        "testing",
        "eda",
        "ferfet",
        "apps",
    }


def test_exports_have_docstrings():
    """Every public class/function ships a docstring (deliverable e)."""
    undocumented = []
    for name in SUBPACKAGES:
        module = importlib.import_module(name)
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(f"{name}.{symbol}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_version_string():
    assert repro.__version__ == "1.0.0"
