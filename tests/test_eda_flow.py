"""Tests for the end-to-end EDA flow (Fig 8)."""

import pytest

from repro.eda.benchmarks import parity, ripple_carry_adder
from repro.eda.boolean import TruthTable
from repro.eda.flow import EdaFlow


class TestFlowOnAdder:
    @pytest.fixture(scope="class")
    def results(self):
        return EdaFlow().run(ripple_carry_adder(4))

    def test_all_families_present(self, results):
        assert set(results) == {
            "imply",
            "majority",
            "magic",
            "magic_single_row",
        }

    def test_every_mapping_verified(self, results):
        """The flow's defining property: mapped programs are functionally
        equivalent to the synthesized circuit."""
        for family, result in results.items():
            assert result.verified, f"{family} mapping failed verification"

    def test_majority_is_fastest(self, results):
        """One-pulse majority + level parallelism beats 2-pulse MAGIC and
        sequential IMPLY on arithmetic circuits."""
        assert results["majority"].delay < results["magic"].delay
        assert results["magic"].delay < results["imply"].delay

    def test_majority_delay_optimality_flag(self, results):
        assert results["majority"].detail["delay_optimal"] == 1.0

    def test_area_delay_product_computed(self, results):
        for result in results.values():
            assert result.area_delay_product == result.delay * result.area

    def test_single_row_trades_delay_for_area(self, results):
        assert (
            results["magic_single_row"].area <= results["magic"].area
        )
        assert (
            results["magic_single_row"].delay >= results["magic"].delay
        )


class TestFlowFromTruthTable:
    def test_run_table(self):
        table = TruthTable.from_function(3, lambda a, b, c: (a ^ b) & c)
        results = EdaFlow().run_table(table)
        assert all(r.verified for r in results.values())

    def test_synthesize_produces_equivalent_aig(self, rng):
        table = TruthTable(4, int(rng.integers(0, 1 << 16)))
        aig = EdaFlow.synthesize(table)
        assert aig.to_truth_tables()[0] == table


class TestMigRewriteEffect:
    def test_rewrite_never_hurts_majority_delay(self):
        flow = EdaFlow()
        circuit = parity(8)
        with_rewrite = flow.run(circuit, mig_rewrite=True)["majority"]
        without = flow.run(circuit, mig_rewrite=False)["majority"]
        assert with_rewrite.delay <= without.delay
        assert with_rewrite.verified and without.verified


class TestValidation:
    def test_bad_verify_limit(self):
        with pytest.raises(ValueError):
            EdaFlow(exhaustive_verify_limit=0)
