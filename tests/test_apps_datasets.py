"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.apps.datasets import (
    binary_patterns,
    gaussian_blobs,
    sparse_signals,
    token_sequences,
)


class TestGaussianBlobs:
    def test_shapes_and_ranges(self):
        x, y = gaussian_blobs(n_samples=100, n_features=8, n_classes=3, rng=0)
        assert x.shape == (100, 8)
        assert y.shape == (100,)
        assert x.min() >= 0 and x.max() <= 1
        assert set(np.unique(y)).issubset(set(range(3)))

    def test_deterministic(self):
        x1, y1 = gaussian_blobs(rng=7)
        x2, y2 = gaussian_blobs(rng=7)
        assert np.array_equal(x1, x2)
        assert np.array_equal(y1, y2)

    def test_separation_controls_difficulty(self):
        """Higher separation -> a nearest-centroid rule scores better."""

        def centroid_accuracy(sep):
            x, y = gaussian_blobs(
                n_samples=400, n_classes=4, separation=sep, rng=1
            )
            centroids = np.array([x[y == k].mean(axis=0) for k in range(4)])
            distances = ((x[:, None, :] - centroids) ** 2).sum(axis=2)
            return float(np.mean(distances.argmin(axis=1) == y))

        assert centroid_accuracy(4.0) > centroid_accuracy(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_blobs(n_samples=2, n_classes=4)


class TestSparseSignals:
    def test_shapes(self):
        d, codes, signals = sparse_signals(
            n_samples=10, n_atoms=32, signal_dim=16, sparsity=3, rng=0
        )
        assert d.shape == (16, 32)
        assert codes.shape == (10, 32)
        assert signals.shape == (10, 16)

    def test_dictionary_normalized(self):
        d, _, _ = sparse_signals(rng=0)
        assert np.allclose(np.linalg.norm(d, axis=0), 1.0)

    def test_exact_sparsity(self):
        _, codes, _ = sparse_signals(n_samples=5, sparsity=4, rng=1)
        assert np.all((codes > 0).sum(axis=1) == 4)

    def test_signals_close_to_synthesis(self):
        d, codes, signals = sparse_signals(noise=0.0, rng=2)
        assert np.allclose(signals, codes @ d.T)

    def test_sparsity_bounds(self):
        with pytest.raises(ValueError):
            sparse_signals(n_atoms=8, sparsity=9)


class TestBinaryPatterns:
    def test_values_are_pm1(self):
        x, y = binary_patterns(rng=0)
        assert set(np.unique(x)).issubset({-1, 1})

    def test_zero_flip_gives_pure_prototypes(self):
        x, y = binary_patterns(
            n_samples=50, n_classes=2, flip_probability=0.0, rng=3
        )
        for k in (0, 1):
            class_rows = x[y == k]
            assert (class_rows == class_rows[0]).all()

    def test_flip_probability_bound(self):
        with pytest.raises(ValueError):
            binary_patterns(flip_probability=0.5)


class TestTokenSequences:
    def test_shapes_and_ranges(self):
        x, y = token_sequences(n_samples=20, seq=4, d_model=8, rng=0)
        assert x.shape == (20, 4, 8)
        assert y.shape == (20,)
        assert x.min() >= 0 and x.max() <= 1
        assert set(np.unique(y)).issubset(set(range(4)))

    def test_deterministic(self):
        a = token_sequences(n_samples=10, rng=5)
        b = token_sequences(n_samples=10, rng=5)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_pure_class_token_without_noise(self):
        # keep_probability=1 and noise=0 repeat the class prototype at
        # every position, so all tokens in a sample are identical.
        x, y = token_sequences(
            n_samples=12, seq=5, keep_probability=1.0, noise=0.0, rng=2
        )
        assert np.all(x == x[:, :1, :])
        # Samples sharing a label share the prototype.
        for k in np.unique(y):
            rows = x[y == k]
            assert np.all(rows == rows[0])

    def test_validation(self):
        with pytest.raises(ValueError, match="n_samples"):
            token_sequences(n_samples=0)
        with pytest.raises(ValueError, match="n_patterns"):
            token_sequences(n_patterns=1)
        with pytest.raises(ValueError, match="keep_probability"):
            token_sequences(keep_probability=0.0)
        with pytest.raises(ValueError, match="noise"):
            token_sequences(noise=-0.1)
        with pytest.raises(ValueError, match="seq"):
            token_sequences(seq=0)
