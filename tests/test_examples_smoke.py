"""Smoke tests: the shipped examples must run end to end.

Only the fast examples run here (the full set runs in seconds each; the
estimator-training one is exercised by its benchmark instead).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "CIM core VMM" in out
    assert "ADC dominates" in out


def test_eda_flow_example_runs(capsys):
    _run("eda_flow_adder.py")
    out = capsys.readouterr().out
    assert "verified" in out
    assert "IMPLY program for NAND" in out


def test_technology_explorer_runs(capsys):
    _run("technology_explorer.py")
    out = capsys.readouterr().out
    assert "chip dimensioning" in out
    assert "write scheme comparison" in out


def test_ferfet_bnn_example_runs(capsys):
    _run("ferfet_bnn.py")
    out = capsys.readouterr().out
    assert "Fig 10(b)" in out
    assert "bit-exact vs software: True" in out


def test_dnn_fault_tolerance_example_runs(capsys):
    _run("dnn_inference_fault_tolerance.py")
    out = capsys.readouterr().out
    assert "X-ABFT demonstration" in out
