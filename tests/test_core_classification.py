"""Tests for the architecture classification (Fig 2) and Table I."""

import pytest

from repro.core.classification import (
    TABLE_I,
    ArchitectureClass,
    ComputePosition,
    Rating,
    classify,
    table_i_rows,
)


class TestClassification:
    def test_fig2_positions(self):
        assert classify(ComputePosition.MEMORY_ARRAY) is ArchitectureClass.CIM_A
        assert (
            classify(ComputePosition.MEMORY_PERIPHERY)
            is ArchitectureClass.CIM_P
        )
        assert (
            classify(ComputePosition.MEMORY_SIP_LOGIC)
            is ArchitectureClass.COM_N
        )
        assert (
            classify(ComputePosition.COMPUTATIONAL_CORE)
            is ArchitectureClass.COM_F
        )

    def test_is_cim_flag(self):
        assert ArchitectureClass.CIM_A.is_cim
        assert ArchitectureClass.CIM_P.is_cim
        assert not ArchitectureClass.COM_N.is_cim
        assert not ArchitectureClass.COM_F.is_cim


class TestTableI:
    """Table I encoded verbatim — spot-check the paper's entries."""

    def test_all_four_rows(self):
        assert set(TABLE_I) == set(ArchitectureClass)

    def test_cim_no_data_movement(self):
        assert TABLE_I[ArchitectureClass.CIM_A].data_movement_outside_core is Rating.NO
        assert TABLE_I[ArchitectureClass.CIM_P].data_movement_outside_core is Rating.NO

    def test_com_moves_data(self):
        assert TABLE_I[ArchitectureClass.COM_N].data_movement_outside_core is Rating.YES
        assert TABLE_I[ArchitectureClass.COM_F].data_movement_outside_core is Rating.YES

    def test_alignment_only_for_cim(self):
        assert TABLE_I[ArchitectureClass.CIM_A].data_alignment_required is Rating.YES
        assert (
            TABLE_I[ArchitectureClass.COM_F].data_alignment_required
            is Rating.NOT_REQUIRED
        )

    def test_bandwidth_column(self):
        assert TABLE_I[ArchitectureClass.CIM_A].available_bandwidth is Rating.MAX
        assert TABLE_I[ArchitectureClass.CIM_P].available_bandwidth is Rating.HIGH_MAX
        assert TABLE_I[ArchitectureClass.COM_N].available_bandwidth is Rating.HIGH
        assert TABLE_I[ArchitectureClass.COM_F].available_bandwidth is Rating.LOW

    def test_scalability_column(self):
        assert TABLE_I[ArchitectureClass.CIM_A].scalability is Rating.LOW
        assert TABLE_I[ArchitectureClass.COM_F].scalability is Rating.HIGH

    def test_design_effort_columns(self):
        cim_a = TABLE_I[ArchitectureClass.CIM_A]
        assert cim_a.design_effort_cells_array is Rating.HIGH
        assert cim_a.design_effort_controller is Rating.HIGH
        cim_p = TABLE_I[ArchitectureClass.CIM_P]
        assert cim_p.design_effort_periphery is Rating.HIGH

    def test_bandwidth_ordinal_ordering(self):
        """The qualitative ratings order CIM-A >= CIM-P >= COM-N > COM-F."""
        bw = {
            arch: TABLE_I[arch].available_bandwidth.ordinal
            for arch in ArchitectureClass
        }
        assert (
            bw[ArchitectureClass.CIM_A]
            >= bw[ArchitectureClass.CIM_P]
            >= bw[ArchitectureClass.COM_N]
            > bw[ArchitectureClass.COM_F]
        )

    def test_printable_rows(self):
        rows = table_i_rows()
        assert len(rows) == 4
        assert rows[0]["architecture"] == "CIM-A"
        assert all("scalability" in row for row in rows)
