"""Tests for cost accounting."""

import pytest

from repro.core.metrics import CostAccumulator, OperationCost


class TestOperationCost:
    def test_addition(self):
        a = OperationCost(energy=1.0, latency=2.0, data_moved=3.0)
        b = OperationCost(energy=0.5, latency=0.5, data_moved=1.0)
        total = a + b
        assert total.energy == 1.5
        assert total.latency == 2.5
        assert total.data_moved == 4.0

    def test_scaling(self):
        c = OperationCost(energy=2.0, latency=1.0).scaled(3)
        assert c.energy == 6.0
        assert c.latency == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OperationCost(energy=-1)
        with pytest.raises(ValueError):
            OperationCost().scaled(-1)


class TestCostAccumulator:
    def test_categories_tracked(self):
        acc = CostAccumulator()
        acc.add("adc", OperationCost(energy=3.0))
        acc.add("dac", OperationCost(energy=1.0))
        acc.add("adc", OperationCost(energy=2.0))
        assert acc.total.energy == 6.0
        assert acc.by_category["adc"].energy == 5.0

    def test_energy_fraction(self):
        acc = CostAccumulator()
        acc.add("adc", OperationCost(energy=3.0))
        acc.add("dac", OperationCost(energy=1.0))
        assert acc.energy_fraction("adc") == pytest.approx(0.75)
        assert acc.energy_fraction("missing") == 0.0

    def test_empty_fractions(self):
        acc = CostAccumulator()
        assert acc.energy_fraction("adc") == 0.0
        assert acc.movement_fraction("bus") == 0.0

    def test_movement_fraction(self):
        acc = CostAccumulator()
        acc.add("bus", OperationCost(data_moved=10))
        acc.add("link", OperationCost(data_moved=30))
        assert acc.movement_fraction("link") == pytest.approx(0.75)

    def test_latency_fraction(self):
        acc = CostAccumulator()
        acc.add("adc", OperationCost(latency=1.0))
        acc.add("dac", OperationCost(latency=3.0))
        assert acc.latency_fraction("dac") == pytest.approx(0.75)
        assert acc.latency_fraction("missing") == 0.0

    def test_add_does_not_alias_argument(self):
        """Regression: the accumulator must own its breakdown entries —
        mutating the caller's OperationCost after add() must not corrupt
        the recorded totals."""
        acc = CostAccumulator()
        cost = OperationCost(energy=1.0, latency=2.0, data_moved=3.0)
        acc.add("adc", cost)
        cost.energy = 1e9
        cost.latency = 1e9
        assert acc.by_category["adc"].energy == 1.0
        assert acc.by_category["adc"].latency == 2.0
        assert acc.total.energy == 1.0

    def test_merge_folds_other_accumulator(self):
        a = CostAccumulator()
        a.add("adc", OperationCost(energy=1.0))
        b = CostAccumulator()
        b.add("adc", OperationCost(energy=2.0))
        b.add("dac", OperationCost(energy=4.0))
        a.merge(b)
        assert a.by_category["adc"].energy == 3.0
        assert a.by_category["dac"].energy == 4.0
        # Source is untouched.
        assert b.by_category["adc"].energy == 2.0

    def test_as_dict_sorted_plain(self):
        acc = CostAccumulator()
        acc.add("dac", OperationCost(energy=1.0))
        acc.add("adc", OperationCost(latency=2.0))
        d = acc.as_dict()
        assert list(d) == ["adc", "dac"]
        assert d["dac"] == {"energy": 1.0, "latency": 0.0, "data_moved": 0.0}
