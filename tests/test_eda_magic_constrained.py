"""Tests for the area-constrained MAGIC mapping and SIMD execution."""

import numpy as np
import pytest

from repro.eda.aig import aig_from_truth_table
from repro.eda.boolean import TruthTable
from repro.eda.execution import SimdRowExecutor, array_for_program
from repro.eda.magic_mapping import (
    map_netlist_to_magic_constrained,
    map_netlist_to_magic_crossbar,
    map_netlist_to_magic_single_row,
)
from repro.eda.netlist import nor_netlist_from_aig
from repro.crossbar.array import CrossbarArray, CrossbarConfig


def _netlist_for(table):
    aig, out = aig_from_truth_table(table)
    aig.add_output(out)
    return nor_netlist_from_aig(aig.cleanup())


def _check(netlist, program):
    n = netlist.n_inputs
    for m in range(1 << n):
        inputs = [(m >> i) & 1 for i in range(n)]
        if program.execute(inputs) != netlist.simulate(inputs):
            return False
    return True


class TestConstrainedMapping:
    @pytest.mark.parametrize("max_rows", [1, 2, 4, 8])
    def test_function_preserved_any_budget(self, max_rows, rng):
        for _ in range(4):
            table = TruthTable(4, int(rng.integers(0, 1 << 16)))
            netlist = _netlist_for(table)
            program = map_netlist_to_magic_constrained(netlist, max_rows)
            assert _check(netlist, program)

    def test_row_budget_respected(self, rng):
        table = TruthTable(4, int(rng.integers(0, 1 << 16)))
        netlist = _netlist_for(table)
        for max_rows in (1, 2, 3):
            program = map_netlist_to_magic_constrained(netlist, max_rows)
            rows, _ = program.crossbar_extent()
            assert rows <= max_rows

    def test_area_delay_tradeoff_curve(self, rng):
        """Shrinking the row budget can only increase delay; the curve is
        monotone — the [73] trade-off."""
        table = TruthTable.from_function(4, lambda *xs: sum(xs) % 2)
        netlist = _netlist_for(table)
        delays = []
        for max_rows in (8, 4, 2, 1):
            program = map_netlist_to_magic_constrained(netlist, max_rows)
            assert _check(netlist, program)
            delays.append(program.delay)
        assert delays == sorted(delays)

    def test_unconstrained_matches_crossbar_mapping(self, rng):
        table = TruthTable(4, int(rng.integers(0, 1 << 16)))
        netlist = _netlist_for(table)
        wide = map_netlist_to_magic_constrained(netlist, max_rows=64)
        crossbar = map_netlist_to_magic_crossbar(netlist)
        assert wide.delay == crossbar.delay

    def test_budget_validated(self):
        table = TruthTable.from_function(2, lambda a, b: a & b)
        with pytest.raises(ValueError):
            map_netlist_to_magic_constrained(_netlist_for(table), 0)


class TestSimdExecution:
    def _single_row_setup(self, table, lanes=4):
        netlist = _netlist_for(table)
        program = map_netlist_to_magic_single_row(netlist)
        array = CrossbarArray(
            CrossbarConfig(rows=lanes, cols=max(program.n_devices, 1)),
            rng=0,
        )
        return netlist, program, array

    def test_lanes_compute_independently(self):
        table = TruthTable.from_function(3, lambda a, b, c: (a & b) ^ c)
        netlist, program, array = self._single_row_setup(table, lanes=8)
        executor = SimdRowExecutor(array, program)
        lane_inputs = [
            [(m >> i) & 1 for i in range(3)] for m in range(8)
        ]
        outputs = executor.execute(lane_inputs)
        for inputs, output in zip(lane_inputs, outputs):
            assert output == netlist.simulate(inputs)

    def test_throughput_is_rows_per_program(self):
        table = TruthTable.from_function(2, lambda a, b: a | b)
        _, program, array = self._single_row_setup(table, lanes=16)
        executor = SimdRowExecutor(array, program)
        assert executor.lanes == 16  # 16 results per pulse sequence

    def test_rejects_multi_row_program(self):
        table = TruthTable.from_function(3, lambda a, b, c: a & b & c)
        netlist = _netlist_for(table)
        program = map_netlist_to_magic_crossbar(netlist)
        array = array_for_program(program, rng=0)
        if {r for r, _ in program.placement.values()} - {0}:
            with pytest.raises(ValueError, match="single-row"):
                SimdRowExecutor(array, program)

    def test_lane_count_checked(self):
        table = TruthTable.from_function(2, lambda a, b: a ^ b)
        _, program, array = self._single_row_setup(table, lanes=4)
        executor = SimdRowExecutor(array, program)
        with pytest.raises(ValueError, match="lane"):
            executor.execute([[0, 0]])

    def test_faulty_lane_only_corrupts_itself(self):
        """A stuck device in one lane leaves the other lanes' results
        intact — SIMD fault containment."""
        table = TruthTable.from_function(2, lambda a, b: a & b)
        netlist, program, array = self._single_row_setup(table, lanes=4)
        out_col = program.placement[program.output_devices[0]][1]
        array.stick_cell(2, out_col, array.config.levels.g_min)
        executor = SimdRowExecutor(array, program)
        outputs = executor.execute([[1, 1]] * 4)
        assert outputs[0] == outputs[1] == outputs[3] == [1]
        assert outputs[2] == [0]  # the faulty lane
