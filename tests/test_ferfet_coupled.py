"""Tests for inter-coupled FeFET arrays ([108])."""

import pytest

from repro.ferfet.coupled_arrays import CoupledArrayPipeline, two_stage_and


class TestPipelineConstruction:
    def test_shape_chaining_enforced(self):
        with pytest.raises(ValueError, match="width"):
            CoupledArrayPipeline([(2, 3), (4, 1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CoupledArrayPipeline([])

    def test_stage_count(self):
        pipeline = CoupledArrayPipeline([(2, 2), (2, 1)])
        assert pipeline.n_stages == 2


class TestBitPassing:
    def test_single_stage_is_aoi(self):
        pipeline = CoupledArrayPipeline([(2, 1)])
        pipeline.store_plane(0, [[1], [1]])
        for b0 in (0, 1):
            for b1 in (0, 1):
                trace = pipeline.evaluate([b0, b1])
                assert trace.final == [1 - (b0 | b1)]

    def test_trace_records_every_stage(self):
        pipeline = CoupledArrayPipeline([(2, 2), (2, 1)])
        pipeline.store_plane(0, [[1, 0], [0, 1]])
        pipeline.store_plane(1, [[1], [1]])
        trace = pipeline.evaluate([1, 0])
        assert len(trace.stage_inputs) == 2
        assert trace.stage_inputs[1] == trace.stage_outputs[0]

    def test_input_width_checked(self):
        pipeline = CoupledArrayPipeline([(2, 1)])
        pipeline.store_plane(0, [[1], [1]])
        with pytest.raises(ValueError, match="inputs"):
            pipeline.evaluate([1, 0, 1])

    def test_store_plane_stage_bounds(self):
        pipeline = CoupledArrayPipeline([(2, 1)])
        with pytest.raises(ValueError):
            pipeline.store_plane(1, [[1], [1]])


class TestTwoStageAnd:
    """De Morgan across two physical arrays: NOT gates then NOR."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_computes_and_of_all_inputs(self, n):
        pipeline = two_stage_and([0] * n)
        for m in range(1 << n):
            inputs = [(m >> i) & 1 for i in range(n)]
            trace = pipeline.evaluate(inputs)
            assert trace.final == [int(all(inputs))], inputs

    def test_intermediate_stage_is_inverters(self):
        pipeline = two_stage_and([0, 0, 0])
        trace = pipeline.evaluate([1, 0, 1])
        assert trace.stage_outputs[0] == [0, 1, 0]

    def test_needs_two_inputs(self):
        with pytest.raises(ValueError):
            two_stage_and([1])

    def test_nonvolatile_planes_survive_evaluations(self):
        """The arrays store while they compute — mixed logic/memory."""
        pipeline = two_stage_and([0, 0])
        for _ in range(20):
            pipeline.evaluate([1, 1])
        # The stored planes are unchanged: the function still holds.
        assert pipeline.evaluate([1, 1]).final == [1]
        assert pipeline.evaluate([1, 0]).final == [0]
