"""Tests for X-ABFT checksum detection/correction ([49, 50])."""

import numpy as np
import pytest

from repro.testing.abft import (
    AbftProtectedVMM,
    ChecksumEncodedMatrix,
)


@pytest.fixture
def weights(rng):
    return rng.uniform(0, 1, (10, 6))


class TestChecksumEncoding:
    def test_checksum_column_is_row_sum(self, weights):
        encoded = ChecksumEncodedMatrix(weights).encoded
        assert np.allclose(encoded[:, -1], weights.sum(axis=1))
        assert encoded.shape == (10, 7)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ChecksumEncodedMatrix(np.array([[-0.1]]))

    def test_output_invariant_holds_for_clean_output(self, weights, rng):
        x = rng.uniform(0, 1, 10)
        output = x @ ChecksumEncodedMatrix(weights).encoded
        assert ChecksumEncodedMatrix.check_output(output, tolerance=1e-9)

    def test_output_invariant_breaks_on_corruption(self, weights, rng):
        x = rng.uniform(0, 1, 10)
        output = x @ ChecksumEncodedMatrix(weights).encoded
        output[2] += 0.5
        assert not ChecksumEncodedMatrix.check_output(output, tolerance=1e-4)


class TestProtectedVMM:
    def test_clean_multiply_accurate_and_consistent(self, weights, rng):
        engine = AbftProtectedVMM(weights, rng=0)
        x = rng.uniform(0, 1, 10)
        y, ok = engine.multiply(x)
        assert ok
        assert np.allclose(y, engine.reference_multiply(x), atol=0.02)

    def test_fault_breaks_checksum_online(self, weights, rng):
        """Concurrent error detection: the very next VMM flags the fault."""
        engine = AbftProtectedVMM(weights, rng=0)
        engine.array.stick_cell(3, 2, 1e-4)
        x = rng.uniform(0.2, 1, 10)
        _, ok = engine.multiply(x)
        assert not ok

    def test_periodic_test_localizes(self, weights):
        engine = AbftProtectedVMM(weights, rng=0)
        engine.array.stick_cell(4, 1, 1e-4)
        report = engine.periodic_test()
        assert report.fault_detected
        assert (4, 1) in report.localized_cells

    def test_correction_restores_accuracy(self, weights, rng):
        engine = AbftProtectedVMM(weights, rng=0)
        x = rng.uniform(0, 1, 10)
        reference = engine.reference_multiply(x)
        engine.array.stick_cell(3, 2, 1e-4)
        y_faulty, _ = engine.multiply(x)
        engine.periodic_test()
        y_corrected, _ = engine.multiply(x)
        err_faulty = np.max(np.abs(y_faulty - reference))
        err_corrected = np.max(np.abs(y_corrected - reference))
        assert err_corrected < err_faulty / 5
        assert np.allclose(y_corrected, reference, atol=0.05)

    def test_periodic_test_clean_no_flags(self, weights):
        engine = AbftProtectedVMM(weights, rng=0)
        report = engine.periodic_test()
        assert not report.fault_detected
        assert report.measurements == 10

    def test_input_shape_checked(self, weights):
        engine = AbftProtectedVMM(weights, rng=0)
        with pytest.raises(ValueError):
            engine.multiply(np.zeros(9))

    def test_checksum_column_fault_also_detected(self, weights, rng):
        engine = AbftProtectedVMM(weights, rng=0)
        cols = engine.array.cols
        engine.array.stick_cell(0, cols - 1, 1e-8)
        x = rng.uniform(0.2, 1, 10)
        _, ok = engine.multiply(x)
        assert not ok
